//! Route-aware rack topologies.
//!
//! ThymesisFlow's design point (§IV) is a *software-defined* fabric:
//! paths are computed and programmed over whatever physical wiring the
//! rack has, not baked into one builder function per shape. This module
//! is the wiring layer's source of truth: a [`Topology`] describes
//! nodes and undirected links, and [`Topology::get_route`] computes the
//! deterministic hop list a path is programmed along. The fabric
//! instantiates one endpoint link slot for the route's first hop and a
//! store-and-forward segment per remaining hop, so a Torus rack and a
//! two-node cable share one datapath.
//!
//! Four layouts are provided — [`Line`], [`Ring`], [`Torus2D`] and the
//! 2-tier [`Clos`] — plus [`Mesh`], the concrete adjacency snapshot any
//! topology lowers into. All route state lives in ordered maps
//! (`BTreeMap`/`BTreeSet`), so route tables iterate deterministically
//! and the same topology always yields the same routes.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Identifier of one topology node (host or switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a topology node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An endpoint: can borrow (compute) or donate memory.
    Host,
    /// A pure forwarding element (Clos leaf/spine tiers).
    Switch,
}

/// One topology node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoNode {
    /// The node's identifier (dense, assigned by the layout).
    pub id: NodeId,
    /// Host or switch.
    pub kind: NodeKind,
    /// Stable human-readable name (`h0`, `h1x2`, `leaf0`, `spine1`).
    pub name: String,
}

/// One undirected topology link. Links are the unit of chaos targeting
/// ([`TopoLink::name`]), route computation and partition cuts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoLink {
    /// Stable name, `"{a.name}-{b.name}"` by construction.
    pub name: String,
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
}

impl TopoLink {
    /// The far end of the link as seen from `from`.
    pub fn peer(&self, from: NodeId) -> NodeId {
        if from == self.a {
            self.b
        } else {
            self.a
        }
    }
}

/// An ordered hop list from a source to a destination node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Every node the route visits, source first, destination last.
    pub nodes: Vec<NodeId>,
    /// The link index (into [`Topology::links`]) of each hop, in order;
    /// `links.len() == nodes.len() - 1`.
    pub links: Vec<usize>,
}

impl Route {
    /// Number of hops (links crossed).
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// The nodes strictly between source and destination — each one a
    /// store-and-forward stage when the route is instantiated.
    pub fn interior(&self) -> &[NodeId] {
        if self.nodes.len() <= 2 {
            &[]
        } else {
            &self.nodes[1..self.nodes.len() - 1]
        }
    }
}

/// Topology and routing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The node is not part of this topology.
    UnknownNode(NodeId),
    /// No live route connects the pair (after subtracting downed links).
    NoRoute {
        /// Route source.
        src: NodeId,
        /// Route destination.
        dst: NodeId,
    },
    /// No link with this name exists.
    UnknownLink(String),
    /// The layout parameters describe no usable topology.
    Degenerate(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown topology node {n}"),
            TopologyError::NoRoute { src, dst } => {
                write!(f, "no route from {src} to {dst}")
            }
            TopologyError::UnknownLink(name) => write!(f, "unknown topology link {name}"),
            TopologyError::Degenerate(why) => write!(f, "degenerate topology: {why}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A rack topology: nodes, undirected links, and deterministic route
/// computation over them.
///
/// `get_route` has a provided implementation — breadth-first shortest
/// path with a smallest-link-index tie-break, so equal-length routes
/// resolve identically on every run. Layouts only describe wiring;
/// the fabric asks the trait for hop lists.
pub trait Topology {
    /// Every node, ordered by [`NodeId`].
    fn nodes(&self) -> &[TopoNode];

    /// Every undirected link; a link's position in this slice is its
    /// index in [`Route::links`].
    fn links(&self) -> &[TopoLink];

    /// The deterministic shortest route from `src` to `dst`.
    ///
    /// # Errors
    ///
    /// Fails on unknown nodes or a disconnected pair.
    fn get_route(&self, src: NodeId, dst: NodeId) -> Result<Route, TopologyError> {
        self.get_route_avoiding(src, dst, &BTreeSet::new())
    }

    /// [`Topology::get_route`] that refuses to cross the `down` links —
    /// the adaptive re-route primitive.
    ///
    /// # Errors
    ///
    /// Fails on unknown nodes or when every surviving route is cut.
    fn get_route_avoiding(
        &self,
        src: NodeId,
        dst: NodeId,
        down: &BTreeSet<usize>,
    ) -> Result<Route, TopologyError> {
        bfs_route(self.nodes(), self.links(), src, dst, down)
    }

    /// Host nodes, in id order.
    fn hosts(&self) -> Vec<NodeId> {
        self.nodes()
            .iter()
            .filter(|n| n.kind == NodeKind::Host)
            .map(|n| n.id)
            .collect()
    }

    /// The link index carrying `name`, if any.
    fn link_named(&self, name: &str) -> Option<usize> {
        self.links().iter().position(|l| l.name == name)
    }

    /// The node carrying `name`, if any.
    fn node_named(&self, name: &str) -> Option<NodeId> {
        self.nodes().iter().find(|n| n.name == name).map(|n| n.id)
    }
}

/// Deterministic breadth-first shortest path. Neighbors expand in
/// (node id, link index) order, so among equal-length routes the one
/// through the smallest link indices wins — on every run.
fn bfs_route(
    nodes: &[TopoNode],
    links: &[TopoLink],
    src: NodeId,
    dst: NodeId,
    down: &BTreeSet<usize>,
) -> Result<Route, TopologyError> {
    let known = |n: NodeId| nodes.iter().any(|t| t.id == n);
    if !known(src) {
        return Err(TopologyError::UnknownNode(src));
    }
    if !known(dst) {
        return Err(TopologyError::UnknownNode(dst));
    }
    if src == dst {
        return Ok(Route {
            nodes: vec![src],
            links: Vec::new(),
        });
    }
    // Sorted adjacency: BTreeMap keys + per-node sorted neighbor lists
    // make the expansion order a pure function of the topology.
    let mut adj: BTreeMap<NodeId, Vec<(NodeId, usize)>> = BTreeMap::new();
    for (i, l) in links.iter().enumerate() {
        if down.contains(&i) {
            continue;
        }
        adj.entry(l.a).or_default().push((l.b, i));
        adj.entry(l.b).or_default().push((l.a, i));
    }
    for v in adj.values_mut() {
        v.sort_unstable();
    }
    let mut parent: BTreeMap<NodeId, (NodeId, usize)> = BTreeMap::new();
    let mut seen: BTreeSet<NodeId> = BTreeSet::new();
    seen.insert(src);
    let mut frontier = VecDeque::from([src]);
    'search: while let Some(at) = frontier.pop_front() {
        let Some(neighbors) = adj.get(&at) else {
            continue;
        };
        for &(next, link) in neighbors {
            if !seen.insert(next) {
                continue;
            }
            parent.insert(next, (at, link));
            if next == dst {
                break 'search;
            }
            frontier.push_back(next);
        }
    }
    if !parent.contains_key(&dst) {
        return Err(TopologyError::NoRoute { src, dst });
    }
    let mut rnodes = vec![dst];
    let mut rlinks = Vec::new();
    let mut at = dst;
    while at != src {
        let &(prev, link) = parent
            .get(&at)
            .ok_or(TopologyError::NoRoute { src, dst })?;
        rlinks.push(link);
        rnodes.push(prev);
        at = prev;
    }
    rnodes.reverse();
    rlinks.reverse();
    Ok(Route {
        nodes: rnodes,
        links: rlinks,
    })
}

/// The concrete adjacency snapshot every layout lowers into — and the
/// form the fabric stores. A `Mesh` is itself a [`Topology`], so
/// sub-racks (partition shards) and snapshots of trait objects compose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh {
    nodes: Vec<TopoNode>,
    links: Vec<TopoLink>,
    /// The degenerate fan-out hub, when the layout has one: a route of
    /// exactly `[host, hub, host]` collapses to one endpoint link slot,
    /// which is how the legacy 1×N builders stay bit-for-bit identical
    /// to their pre-topology wiring.
    hub: Option<NodeId>,
}

impl Mesh {
    /// An empty mesh.
    pub fn new() -> Self {
        Mesh {
            nodes: Vec::new(),
            links: Vec::new(),
            hub: None,
        }
    }

    /// Snapshots any topology into its concrete form.
    pub fn snapshot(topo: &dyn Topology) -> Self {
        Mesh {
            nodes: topo.nodes().to_vec(),
            links: topo.links().to_vec(),
            hub: None,
        }
    }

    /// Adds a host node named `name`, returning its id.
    pub fn add_host(&mut self, name: &str) -> NodeId {
        self.add_node(name, NodeKind::Host)
    }

    /// Adds a switch node named `name`, returning its id.
    pub fn add_switch(&mut self, name: &str) -> NodeId {
        self.add_node(name, NodeKind::Switch)
    }

    fn add_node(&mut self, name: &str, kind: NodeKind) -> NodeId {
        // Node counts stay far below u32::MAX.
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(TopoNode {
            id,
            kind,
            name: name.to_string(),
        });
        id
    }

    /// Wires `a` and `b` with an undirected link named
    /// `"{a.name}-{b.name}"`, returning the link index.
    pub fn link(&mut self, a: NodeId, b: NodeId) -> usize {
        let name = format!("{}-{}", self.name_of(a), self.name_of(b));
        self.links.push(TopoLink { name, a, b });
        self.links.len() - 1
    }

    fn name_of(&self, n: NodeId) -> &str {
        self.nodes
            .get(n.0 as usize)
            .map_or("?", |t| t.name.as_str())
    }

    /// The declared name of link `idx`, if it exists.
    pub fn link_name(&self, idx: usize) -> Option<&str> {
        self.links.get(idx).map(|l| l.name.as_str())
    }

    /// Every link's declared name, in link-index order — the shared
    /// vocabulary of named chaos targets, journal records and
    /// congestion reports.
    pub fn link_names(&self) -> Vec<String> {
        self.links.iter().map(|l| l.name.clone()).collect()
    }

    /// Marks `hub` as the degenerate fan-out hub (see [`Mesh`] docs).
    pub fn set_hub(&mut self, hub: NodeId) {
        self.hub = Some(hub);
    }

    /// The degenerate fan-out hub, if one is marked.
    pub fn hub(&self) -> Option<NodeId> {
        self.hub
    }

    /// The sub-mesh induced by `keep`, with nodes re-numbered densely
    /// in id order but names (node *and* link) preserved — partition
    /// shards keep addressing chaos and cuts by the original names.
    pub fn subgraph(&self, keep: &BTreeSet<NodeId>) -> Mesh {
        let mut out = Mesh::new();
        let mut remap: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        for n in &self.nodes {
            if keep.contains(&n.id) {
                let id = out.add_node(&n.name, n.kind);
                remap.insert(n.id, id);
            }
        }
        for l in &self.links {
            if let (Some(&a), Some(&b)) = (remap.get(&l.a), remap.get(&l.b)) {
                out.links.push(TopoLink {
                    name: l.name.clone(),
                    a,
                    b,
                });
            }
        }
        if let Some(h) = self.hub {
            if let Some(&h) = remap.get(&h) {
                out.hub = Some(h);
            }
        }
        out
    }

    /// Connected components after removing the `cut` links, as sorted
    /// node sets in smallest-member order — the partition-shard
    /// decomposition of a topology cut.
    pub fn components_without(&self, cut: &BTreeSet<usize>) -> Vec<BTreeSet<NodeId>> {
        let mut adj: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for (i, l) in self.links.iter().enumerate() {
            if cut.contains(&i) {
                continue;
            }
            adj.entry(l.a).or_default().push(l.b);
            adj.entry(l.b).or_default().push(l.a);
        }
        let mut unseen: BTreeSet<NodeId> = self.nodes.iter().map(|n| n.id).collect();
        let mut out = Vec::new();
        while let Some(&start) = unseen.iter().next() {
            let mut comp = BTreeSet::new();
            let mut frontier = VecDeque::from([start]);
            unseen.remove(&start);
            comp.insert(start);
            while let Some(at) = frontier.pop_front() {
                for &next in adj.get(&at).into_iter().flatten() {
                    if unseen.remove(&next) {
                        comp.insert(next);
                        frontier.push_back(next);
                    }
                }
            }
            out.push(comp);
        }
        out
    }
}

impl Default for Mesh {
    fn default() -> Self {
        Mesh::new()
    }
}

impl Topology for Mesh {
    fn nodes(&self) -> &[TopoNode] {
        &self.nodes
    }

    fn links(&self) -> &[TopoLink] {
        &self.links
    }
}

/// `n` hosts in a row: `h0 — h1 — … — h{n-1}`. `Line::new(2)` is the
/// point-to-point reference shape.
#[derive(Debug, Clone)]
pub struct Line {
    mesh: Mesh,
}

impl Line {
    /// A line of `n >= 2` hosts.
    ///
    /// # Errors
    ///
    /// Fails below 2 nodes.
    pub fn new(n: usize) -> Result<Self, TopologyError> {
        if n < 2 {
            return Err(TopologyError::Degenerate(format!(
                "a line needs at least 2 hosts, got {n}"
            )));
        }
        let mut mesh = Mesh::new();
        let hosts: Vec<NodeId> = (0..n).map(|i| mesh.add_host(&format!("h{i}"))).collect();
        for w in hosts.windows(2) {
            mesh.link(w[0], w[1]);
        }
        Ok(Line { mesh })
    }
}

impl Topology for Line {
    fn nodes(&self) -> &[TopoNode] {
        self.mesh.nodes()
    }

    fn links(&self) -> &[TopoLink] {
        self.mesh.links()
    }
}

/// `n` hosts on a cycle: a [`Line`] plus the wraparound link, so every
/// pair has two disjoint routes.
#[derive(Debug, Clone)]
pub struct Ring {
    mesh: Mesh,
}

impl Ring {
    /// A ring of `n >= 3` hosts.
    ///
    /// # Errors
    ///
    /// Fails below 3 nodes (a 2-ring is a double-linked line).
    pub fn new(n: usize) -> Result<Self, TopologyError> {
        if n < 3 {
            return Err(TopologyError::Degenerate(format!(
                "a ring needs at least 3 hosts, got {n}"
            )));
        }
        let mut mesh = Mesh::new();
        let hosts: Vec<NodeId> = (0..n).map(|i| mesh.add_host(&format!("h{i}"))).collect();
        for w in hosts.windows(2) {
            mesh.link(w[0], w[1]);
        }
        mesh.link(hosts[n - 1], hosts[0]);
        Ok(Ring { mesh })
    }
}

impl Topology for Ring {
    fn nodes(&self) -> &[TopoNode] {
        self.mesh.nodes()
    }

    fn links(&self) -> &[TopoLink] {
        self.mesh.links()
    }
}

/// `rows × cols` hosts on a 2-D torus: every host links to its right
/// and down neighbor, with wraparound in both dimensions. Host
/// `h{r}x{c}` sits at row `r`, column `c`.
#[derive(Debug, Clone)]
pub struct Torus2D {
    mesh: Mesh,
    cols: usize,
}

impl Torus2D {
    /// A torus of `rows × cols` hosts, both at least 3 so the four
    /// neighbor links of a node are distinct.
    ///
    /// # Errors
    ///
    /// Fails below 3×3.
    pub fn new(rows: usize, cols: usize) -> Result<Self, TopologyError> {
        if rows < 3 || cols < 3 {
            return Err(TopologyError::Degenerate(format!(
                "a 2-D torus needs at least 3x3 hosts, got {rows}x{cols}"
            )));
        }
        let mut mesh = Mesh::new();
        let mut grid = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                grid.push(mesh.add_host(&format!("h{r}x{c}")));
            }
        }
        let at = |r: usize, c: usize| grid[r * cols + c];
        for r in 0..rows {
            for c in 0..cols {
                mesh.link(at(r, c), at(r, (c + 1) % cols));
                mesh.link(at(r, c), at((r + 1) % rows, c));
            }
        }
        Ok(Torus2D { mesh, cols })
    }

    /// The host at `(row, col)`.
    pub fn host_at(&self, row: usize, col: usize) -> NodeId {
        // Grid nodes are allocated row-major before any other node.
        NodeId((row * self.cols + col) as u32)
    }
}

impl Topology for Torus2D {
    fn nodes(&self) -> &[TopoNode] {
        self.mesh.nodes()
    }

    fn links(&self) -> &[TopoLink] {
        self.mesh.links()
    }
}

/// A 2-tier Clos (leaf/spine) rack: `hosts_per_leaf` hosts hang off
/// each of `leaves` leaf switches, and every leaf uplinks to every one
/// of `spines` spine switches. Host-to-host routes cross at most four
/// links (host→leaf→spine→leaf→host).
///
/// [`Clos::single_tier`] is the degenerate 1-tier form — one hub every
/// host attaches to — that the legacy `fan_out`/`circuit_rack` builders
/// wrap.
#[derive(Debug, Clone)]
pub struct Clos {
    mesh: Mesh,
    hosts: Vec<NodeId>,
}

impl Clos {
    /// A 2-tier Clos with `leaves × hosts_per_leaf` hosts.
    ///
    /// # Errors
    ///
    /// Fails with zero leaves, spines or hosts.
    pub fn new(
        spines: usize,
        leaves: usize,
        hosts_per_leaf: usize,
    ) -> Result<Self, TopologyError> {
        if spines == 0 || leaves == 0 || hosts_per_leaf == 0 {
            return Err(TopologyError::Degenerate(format!(
                "a Clos needs spines, leaves and hosts, got {spines}/{leaves}/{hosts_per_leaf}"
            )));
        }
        let mut mesh = Mesh::new();
        let mut hosts = Vec::with_capacity(leaves * hosts_per_leaf);
        let leaf_ids: Vec<NodeId> =
            (0..leaves).map(|l| mesh.add_switch(&format!("leaf{l}"))).collect();
        let spine_ids: Vec<NodeId> =
            (0..spines).map(|s| mesh.add_switch(&format!("spine{s}"))).collect();
        for (l, &leaf) in leaf_ids.iter().enumerate() {
            for h in 0..hosts_per_leaf {
                let host = mesh.add_host(&format!("h{}", l * hosts_per_leaf + h));
                mesh.link(host, leaf);
                hosts.push(host);
            }
        }
        for &leaf in &leaf_ids {
            for &spine in &spine_ids {
                mesh.link(leaf, spine);
            }
        }
        Ok(Clos { mesh, hosts })
    }

    /// The degenerate 1-tier Clos: `hosts` hosts on one hub switch.
    /// Routes between any two hosts are `[host, hub, host]`, which the
    /// fabric collapses to a single endpoint link — the legacy 1×N
    /// fan-out wiring, now expressed as a topology.
    ///
    /// # Errors
    ///
    /// Fails below 2 hosts.
    pub fn single_tier(hosts: usize) -> Result<Self, TopologyError> {
        if hosts < 2 {
            return Err(TopologyError::Degenerate(format!(
                "a 1-tier Clos needs at least 2 hosts, got {hosts}"
            )));
        }
        let mut mesh = Mesh::new();
        let hub = mesh.add_switch("hub");
        mesh.set_hub(hub);
        let hosts: Vec<NodeId> = (0..hosts)
            .map(|h| {
                let host = mesh.add_host(&format!("h{h}"));
                mesh.link(host, hub);
                host
            })
            .collect();
        Ok(Clos { mesh, hosts })
    }

    /// The `i`-th host, in construction order.
    pub fn host(&self, i: usize) -> Option<NodeId> {
        self.hosts.get(i).copied()
    }

    /// Lowers into the concrete mesh (keeps the hub marker, which
    /// [`Mesh::snapshot`] of the trait object cannot see).
    pub fn mesh(&self) -> Mesh {
        self.mesh.clone()
    }
}

impl Topology for Clos {
    fn nodes(&self) -> &[TopoNode] {
        self.mesh.nodes()
    }

    fn links(&self) -> &[TopoLink] {
        self.mesh.links()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_routes_walk_the_row() {
        let line = Line::new(5).unwrap();
        assert_eq!(line.hosts().len(), 5);
        assert_eq!(line.links().len(), 4);
        let r = line.get_route(NodeId(0), NodeId(4)).unwrap();
        assert_eq!(r.hops(), 4);
        assert_eq!(r.nodes.len(), 5);
        assert_eq!(r.links, vec![0, 1, 2, 3]);
        assert_eq!(r.interior().len(), 3);
        assert!(Line::new(1).is_err());
    }

    #[test]
    fn ring_prefers_the_short_arc_and_survives_a_cut() {
        let ring = Ring::new(6).unwrap();
        assert_eq!(ring.links().len(), 6);
        let r = ring.get_route(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(r.hops(), 2);
        // Cut the short arc: the route wraps the other way.
        let down: BTreeSet<usize> = r.links.iter().copied().collect();
        let alt = ring.get_route_avoiding(NodeId(0), NodeId(2), &down).unwrap();
        assert_eq!(alt.hops(), 4);
        assert!(alt.links.iter().all(|l| !down.contains(l)));
    }

    #[test]
    fn torus_routes_are_manhattan_short_and_named() {
        let torus = Torus2D::new(4, 4).unwrap();
        assert_eq!(torus.nodes().len(), 16);
        assert_eq!(torus.links().len(), 32);
        let r = torus
            .get_route(torus.host_at(0, 0), torus.host_at(2, 2))
            .unwrap();
        assert_eq!(r.hops(), 4, "manhattan distance with wraparound");
        assert_eq!(torus.node_named("h2x2"), Some(torus.host_at(2, 2)));
        let first = &torus.links()[r.links[0]];
        assert!(torus.link_named(&first.name).is_some());
        // Wraparound: corner to corner is 2 hops, not 6.
        let wrap = torus
            .get_route(torus.host_at(0, 0), torus.host_at(3, 3))
            .unwrap();
        assert_eq!(wrap.hops(), 2);
    }

    #[test]
    fn clos_routes_cross_leaf_spine_leaf() {
        let clos = Clos::new(2, 2, 3).unwrap();
        assert_eq!(clos.hosts().len(), 6);
        let (a, b) = (clos.host(0).unwrap(), clos.host(5).unwrap());
        let r = clos.get_route(a, b).unwrap();
        assert_eq!(r.hops(), 4, "host-leaf-spine-leaf-host");
        for n in r.interior() {
            let node = &clos.nodes()[n.0 as usize];
            assert_eq!(node.kind, NodeKind::Switch);
        }
        // Same-leaf pairs stay under the leaf.
        let r = clos.get_route(a, clos.host(1).unwrap()).unwrap();
        assert_eq!(r.hops(), 2);
    }

    #[test]
    fn single_tier_clos_is_the_degenerate_hub() {
        let clos = Clos::single_tier(4).unwrap();
        let mesh = clos.mesh();
        let hub = mesh.hub().expect("hub marked");
        let r = clos
            .get_route(clos.host(0).unwrap(), clos.host(3).unwrap())
            .unwrap();
        assert_eq!(r.hops(), 2);
        assert_eq!(r.interior(), &[hub]);
    }

    #[test]
    fn bfs_tie_break_is_deterministic() {
        // Two equal-length routes: the smaller link indices win.
        let ring = Ring::new(4).unwrap();
        let r1 = ring.get_route(NodeId(0), NodeId(2)).unwrap();
        let r2 = ring.get_route(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1.links, vec![0, 1], "clockwise arc via h1 wins the tie");
    }

    #[test]
    fn route_errors_are_typed() {
        let line = Line::new(2).unwrap();
        assert_eq!(
            line.get_route(NodeId(0), NodeId(9)),
            Err(TopologyError::UnknownNode(NodeId(9)))
        );
        let mut down = BTreeSet::new();
        down.insert(0);
        assert_eq!(
            line.get_route_avoiding(NodeId(0), NodeId(1), &down),
            Err(TopologyError::NoRoute {
                src: NodeId(0),
                dst: NodeId(1)
            })
        );
        let self_route = line.get_route(NodeId(1), NodeId(1)).unwrap();
        assert_eq!(self_route.hops(), 0);
    }

    #[test]
    fn subgraph_keeps_names_and_renumbers_densely() {
        let torus = Torus2D::new(4, 4).unwrap();
        let mesh = Mesh::snapshot(&torus);
        // Cut the torus into two 2x4 halves along the row dimension.
        let cut: BTreeSet<usize> = mesh
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                let row = |n: NodeId| n.0 / 4;
                let (ra, rb) = (row(l.a), row(l.b));
                ra != rb && !(ra.min(rb) == 0 && ra.max(rb) == 1 || ra.min(rb) == 2 && ra.max(rb) == 3)
            })
            .map(|(i, _)| i)
            .collect();
        let comps = mesh.components_without(&cut);
        assert_eq!(comps.len(), 2);
        let half = mesh.subgraph(&comps[0]);
        assert_eq!(half.nodes().len(), 8);
        assert_eq!(half.node_named("h0x0"), Some(NodeId(0)));
        // Link names survive the renumbering.
        assert!(half.link_named("h0x0-h0x1").is_some());
        // Each half still routes internally.
        let r = half
            .get_route(half.node_named("h0x0").unwrap(), half.node_named("h1x3").unwrap())
            .unwrap();
        assert!(r.hops() >= 2);
    }
}
