//! Bandwidth and serialization-delay models.
//!
//! Links, memory ports and OpenCAPI transaction engines are all modelled
//! as *serialized resources*: a byte stream drains at a fixed rate and a
//! new transfer cannot start before the previous one finished serializing.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A data rate in bytes per (real) second of simulated time.
///
/// # Example
///
/// ```
/// use simkit::bandwidth::Rate;
///
/// // A 25 Gbit/s serDES lane.
/// let lane = Rate::from_gbit_per_sec(25.0);
/// // Serializing a 32-byte flit takes 10.24 ns.
/// assert_eq!(lane.transfer_time(32).as_ps(), 10_240);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rate {
    bytes_per_sec: f64,
}

impl Rate {
    /// Creates a rate from bytes/second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is non-positive or not finite.
    pub fn from_bytes_per_sec(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "invalid rate: {bytes_per_sec}"
        );
        Rate { bytes_per_sec }
    }

    /// Creates a rate from Gbit/s (network convention, powers of ten).
    pub fn from_gbit_per_sec(gbit: f64) -> Self {
        Self::from_bytes_per_sec(gbit * 1e9 / 8.0)
    }

    /// Creates a rate from GiB/s (memory convention, powers of two).
    pub fn from_gib_per_sec(gib: f64) -> Self {
        Self::from_bytes_per_sec(gib * (1u64 << 30) as f64)
    }

    /// The rate in bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.bytes_per_sec
    }

    /// The rate in GiB/s.
    pub fn as_gib_per_sec(self) -> f64 {
        self.bytes_per_sec / (1u64 << 30) as f64
    }

    /// Time to serialize `bytes` at this rate.
    pub fn transfer_time(self, bytes: u64) -> SimTime {
        SimTime::from_ps(crate::units::f64_to_u64_saturating(
            (bytes as f64 / self.bytes_per_sec * 1e12).round(),
        ))
    }

    /// Scales the rate by a factor (e.g. encoding overhead).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is non-positive.
    pub fn scaled(self, factor: f64) -> Rate {
        Self::from_bytes_per_sec(self.bytes_per_sec * factor)
    }
}

/// A serialized transmission resource (one link direction, one memory
/// port): transfers queue behind each other and drain at [`Rate`].
///
/// # Example
///
/// ```
/// use simkit::bandwidth::{Rate, SerializedLine};
/// use simkit::time::SimTime;
///
/// let mut line = SerializedLine::new(Rate::from_gbit_per_sec(100.0));
/// let t0 = SimTime::ZERO;
/// let first = line.enqueue(t0, 1250); // 100 ns at 100 Gbit/s
/// let second = line.enqueue(t0, 1250); // queues behind the first
/// assert_eq!(first.as_ns(), 100);
/// assert_eq!(second.as_ns(), 200);
/// ```
#[derive(Debug, Clone)]
pub struct SerializedLine {
    rate: Rate,
    free_at: SimTime,
    bytes_sent: u64,
    busy: SimTime,
}

impl SerializedLine {
    /// Creates an idle line with the given drain rate.
    pub fn new(rate: Rate) -> Self {
        SerializedLine {
            rate,
            free_at: SimTime::ZERO,
            bytes_sent: 0,
            busy: SimTime::ZERO,
        }
    }

    /// The drain rate.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// Re-rates the line in place (e.g. a bonded channel losing a lane).
    /// In-flight transfers keep their already-computed completion
    /// instants; only transfers enqueued after the call drain at the new
    /// rate. Counters (`bytes_sent`, busy time) are preserved.
    pub fn set_rate(&mut self, rate: Rate) {
        self.rate = rate;
    }

    /// Enqueues a transfer of `bytes` arriving at `now`; returns the
    /// instant serialization *completes* (queueing + transfer).
    pub fn enqueue(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.enqueue_with_overhead(now, bytes, SimTime::ZERO)
    }

    /// Like [`SerializedLine::enqueue`], but each transfer also occupies
    /// the line for a fixed per-transaction `overhead` (command issue,
    /// handshake) before the bytes stream. Back-to-back transfers of
    /// size `b` therefore sustain `b / (overhead + b/rate)` — the model
    /// behind transaction-size-dependent port bandwidth.
    pub fn enqueue_with_overhead(
        &mut self,
        now: SimTime,
        bytes: u64,
        overhead: SimTime,
    ) -> SimTime {
        let start = self.free_at.max(now);
        let xfer = overhead + self.rate.transfer_time(bytes);
        self.free_at = start + xfer;
        self.bytes_sent += bytes;
        self.busy += xfer;
        self.free_at
    }

    /// The instant the line becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total bytes ever enqueued.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Utilization over `[0, horizon]` as a fraction in `[0, 1]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.is_zero() {
            return 0.0;
        }
        (self.busy.as_ps() as f64 / horizon.as_ps() as f64).min(1.0)
    }

    /// Achieved throughput over `[0, horizon]` in bytes/second.
    pub fn throughput(&self, horizon: SimTime) -> f64 {
        if horizon.is_zero() {
            return 0.0;
        }
        self.bytes_sent as f64 / horizon.as_secs_f64()
    }
}

/// Fair bandwidth sharing: given `n` concurrent streams on a resource of
/// capacity `cap`, each stream gets `cap/n` but never more than its own
/// demand. Returns the per-stream achieved rate.
///
/// ```
/// use simkit::bandwidth::{fair_share, Rate};
/// let cap = Rate::from_gib_per_sec(12.5);
/// let got = fair_share(cap, 4, Rate::from_gib_per_sec(2.0));
/// assert!((got.as_gib_per_sec() - 2.0).abs() < 1e-9); // demand-limited
/// let got = fair_share(cap, 4, Rate::from_gib_per_sec(5.0));
/// assert!((got.as_gib_per_sec() - 3.125).abs() < 1e-9); // capacity-limited
/// ```
pub fn fair_share(capacity: Rate, streams: usize, demand: Rate) -> Rate {
    if streams == 0 {
        return demand;
    }
    let share = capacity.bytes_per_sec() / streams as f64;
    Rate::from_bytes_per_sec(share.min(demand.bytes_per_sec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_conversions() {
        let r = Rate::from_gbit_per_sec(100.0);
        assert!((r.bytes_per_sec() - 12.5e9).abs() < 1.0);
        let m = Rate::from_gib_per_sec(12.5);
        assert!((m.as_gib_per_sec() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let r = Rate::from_gbit_per_sec(25.0);
        let t1 = r.transfer_time(32);
        let t4 = r.transfer_time(128);
        assert_eq!(t4.as_ps(), t1.as_ps() * 4);
    }

    #[test]
    fn line_queues_back_to_back() {
        let mut line = SerializedLine::new(Rate::from_bytes_per_sec(1e9)); // 1 B/ns
        let done1 = line.enqueue(SimTime::ZERO, 100);
        let done2 = line.enqueue(SimTime::from_ns(10), 100);
        assert_eq!(done1.as_ns(), 100);
        assert_eq!(done2.as_ns(), 200);
        // An arrival after the line went idle starts immediately.
        let done3 = line.enqueue(SimTime::from_ns(500), 100);
        assert_eq!(done3.as_ns(), 600);
    }

    #[test]
    fn utilization_and_throughput() {
        let mut line = SerializedLine::new(Rate::from_bytes_per_sec(1e9));
        line.enqueue(SimTime::ZERO, 500);
        let horizon = SimTime::from_ns(1000);
        assert!((line.utilization(horizon) - 0.5).abs() < 1e-9);
        assert!((line.throughput(horizon) - 500.0 / 1e-6).abs() < 1.0);
    }

    #[test]
    fn encoding_overhead_via_scaled() {
        // 64b/66b encoding leaves 64/66 of the raw lane rate for payload.
        let raw = Rate::from_gbit_per_sec(25.0);
        let payload = raw.scaled(64.0 / 66.0);
        assert!((payload.bytes_per_sec() - 25e9 / 8.0 * 64.0 / 66.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn zero_rate_panics() {
        Rate::from_bytes_per_sec(0.0);
    }
}
