//! A deterministic discrete-event queue.
//!
//! Events scheduled at the same instant are delivered in insertion order
//! (FIFO tie-breaking), which keeps every simulation in this workspace
//! fully deterministic for a given RNG seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event: delivery instant plus a monotonically increasing
/// sequence number used for stable tie-breaking.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue over an arbitrary event type `E`.
///
/// The queue tracks the current simulated instant: popping an event
/// advances [`EventQueue::now`] to that event's scheduled time.
///
/// # Example
///
/// ```
/// use simkit::event::EventQueue;
/// use simkit::time::SimTime;
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Tick, Tock }
///
/// let mut q = EventQueue::new();
/// q.schedule_in(SimTime::from_ns(10), Ev::Tock);
/// q.schedule_in(SimTime::from_ns(1), Ev::Tick);
/// assert_eq!(q.pop().unwrap().1, Ev::Tick);
/// assert_eq!(q.now(), SimTime::from_ns(1));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at instant zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated instant (the timestamp of the last popped
    /// event, or zero if nothing has been popped yet).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` for delivery at absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`EventQueue::now`]); a
    /// discrete-event simulation must never travel backwards.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at}, now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` for delivery `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// delivery time. Returns `None` when the queue is exhausted.
    ///
    /// With the `sanitize` feature on, asserts that simulated time never
    /// regresses — the heap invariant every simulation depends on.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let sch = self.heap.pop()?;
        #[cfg(feature = "sanitize")]
        assert!(
            sch.at >= self.now,
            "sanitize: event queue clock regressed: {} -> {}",
            self.now,
            sch.at
        );
        self.now = sch.at;
        Some((sch.at, sch.event))
    }

    /// The delivery time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains events while `cond(next_event_time)` holds, applying `f`.
    ///
    /// Runs the classic event loop "until time T" pattern without the
    /// caller owning the loop. Returns the number of events processed.
    pub fn run_while<F, C>(&mut self, mut cond: C, mut f: F) -> u64
    where
        F: FnMut(&mut Self, SimTime, E),
        C: FnMut(SimTime) -> bool,
    {
        let mut n = 0;
        while let Some(t) = self.peek_time() {
            if !cond(t) {
                break;
            }
            let (t, ev) = self.pop().expect("peeked event exists");
            f(self, t, ev);
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), 3);
        q.schedule(SimTime::from_ns(10), 1);
        q.schedule(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(7));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), "a");
        q.pop();
        q.schedule_in(SimTime::from_ns(5), "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(15)));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn run_while_stops_at_horizon() {
        let mut q = EventQueue::new();
        for i in 1..=10u64 {
            q.schedule(SimTime::from_ns(i), i);
        }
        let mut seen = Vec::new();
        let horizon = SimTime::from_ns(5);
        let n = q.run_while(|t| t <= horizon, |_, _, e| seen.push(e));
        assert_eq!(n, 5);
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn run_while_can_reschedule() {
        // A self-perpetuating ticker: each event schedules the next.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(1), ());
        let horizon = SimTime::from_ns(100);
        let n = q.run_while(
            |t| t <= horizon,
            |q, _, ()| {
                q.schedule_in(SimTime::from_ns(1), ());
            },
        );
        assert_eq!(n, 100);
    }
}
