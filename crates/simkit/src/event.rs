//! Deterministic discrete-event queues.
//!
//! Events scheduled at the same instant are delivered in insertion order
//! (FIFO tie-breaking), which keeps every simulation in this workspace
//! fully deterministic for a given RNG seed.
//!
//! Two engines back the queue, selected at construction:
//!
//! * [`Engine::Hybrid`] (the default) — a bucketed calendar for
//!   near-horizon events with O(1) schedule and amortised-O(1) pop,
//!   falling back to a binary heap for events beyond the calendar
//!   window. The datapath's 2.494 ns flit-clock ticks, serDES/stack
//!   crossings and DRAM completions all land in the calendar; only
//!   multi-microsecond timers take the heap path.
//! * [`Engine::HeapOnly`] — the original pure-`BinaryHeap` engine, kept
//!   as the reference implementation. Property tests assert that both
//!   engines pop every schedule in the identical order, so simulations
//!   are byte-for-byte reproducible on either.
//!
//! The calendar stores its records structure-of-arrays: each bucket (and
//! the drain the current bucket is sorted into) keeps the `(at, seq)`
//! sort keys in one dense array and parks the event payloads in a slot
//! arena indexed by the keys. Ordering a bucket therefore sorts 24-byte
//! keys instead of shuffling full event payloads (which on the fabric
//! hot path carry whole LLC frames); a payload is moved exactly once on
//! schedule and once on pop.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Calendar bucket width as a power of two: 2^12 ps = 4.096 ns, about
/// 1.6 flit cycles of the 401 MHz prototype clock.
const SLOT_SHIFT: u32 = 12;

/// Number of calendar buckets; together with [`SLOT_SHIFT`] this spans a
/// ~4.2 µs near horizon, several flit round trips deep.
const NUM_BUCKETS: usize = 1024;

/// Which scheduling engine backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Calendar buckets near the horizon, heap beyond it (fast path).
    #[default]
    Hybrid,
    /// The original pure binary-heap engine (reference baseline).
    HeapOnly,
}

/// A pending event: delivery instant plus a monotonically increasing
/// sequence number used for stable tie-breaking.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One structure-of-arrays event store backing a calendar bucket or the
/// drain: `(at, seq, slot)` sort keys live in one dense array while the
/// payloads sit still in a slot arena the keys index. Buckets keep keys
/// in arrival order; the drain keeps them sorted **descending** by
/// `(at, seq)` so the next event pops from the back.
#[derive(Debug)]
struct Lane<E> {
    /// Sort keys; `slot` indexes into [`Lane::slots`].
    keys: Vec<(SimTime, u64, u32)>,
    /// Payload arena; a slot empties when its key pops.
    slots: Vec<Option<E>>,
}

impl<E> Lane<E> {
    fn new() -> Self {
        Lane {
            keys: Vec::new(),
            slots: Vec::new(),
        }
    }

    fn slot_index(&self) -> u32 {
        u32::try_from(self.slots.len()).expect("bucket slot index fits u32")
    }

    /// Appends in arrival order (bucket mode).
    fn push(&mut self, at: SimTime, seq: u64, event: E) {
        let slot = self.slot_index();
        self.keys.push((at, seq, slot));
        self.slots.push(Some(event));
    }

    /// Merges into the descending key order (drain mode, late schedules).
    fn insert_sorted(&mut self, at: SimTime, seq: u64, event: E) {
        let slot = self.slot_index();
        self.slots.push(Some(event));
        let key = (at, seq);
        let pos = self.keys.partition_point(|&(a, s, _)| (a, s) > key);
        self.keys.insert(pos, (at, seq, slot));
    }

    fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn last_key(&self) -> Option<(SimTime, u64)> {
        self.keys.last().map(|&(at, seq, _)| (at, seq))
    }

    fn peek_event(&self) -> Option<&E> {
        self.keys.last().map(|&(_, _, slot)| {
            let slot = usize::try_from(slot).expect("slot index fits usize");
            self.slots[slot].as_ref().expect("pending slot holds its payload")
        })
    }

    /// Pops the backmost key's payload out of the arena. The arena is
    /// recycled (truncated to zero, allocation kept) once every key has
    /// popped, so a lane's slots never grow past one bucket lap.
    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        let (at, seq, slot) = self.keys.pop()?;
        let slot = usize::try_from(slot).expect("slot index fits usize");
        let event = self.slots[slot].take().expect("pending slot holds its payload");
        if self.keys.is_empty() {
            self.slots.clear();
        }
        Some((at, seq, event))
    }

    /// Orders the keys descending by `(at, seq)` without touching the
    /// payload arena — the structure-of-arrays layout's whole point.
    fn sort_descending(&mut self) {
        self.keys
            .sort_unstable_by(|a, b| (b.0, b.1).cmp(&(a.0, a.1)));
    }

    fn min_time(&self) -> Option<SimTime> {
        self.keys.iter().map(|&(at, _, _)| at).min()
    }
}

/// A discrete-event queue over an arbitrary event type `E`.
///
/// The queue tracks the current simulated instant: popping an event
/// advances [`EventQueue::now`] to that event's scheduled time.
///
/// # Example
///
/// ```
/// use simkit::event::EventQueue;
/// use simkit::time::SimTime;
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Tick, Tock }
///
/// let mut q = EventQueue::new();
/// q.schedule_in(SimTime::from_ns(10), Ev::Tock);
/// q.schedule_in(SimTime::from_ns(1), Ev::Tick);
/// assert_eq!(q.pop().unwrap().1, Ev::Tick);
/// assert_eq!(q.now(), SimTime::from_ns(1));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    engine: Engine,
    seq: u64,
    now: SimTime,
    popped: u64,
    pending: usize,
    /// Far-future events (all events in `HeapOnly` mode).
    heap: BinaryHeap<Scheduled<E>>,
    /// The currently ingested calendar slice, keys sorted **descending**
    /// by `(at, seq)`; the next event pops from the back. Also absorbs
    /// late schedules that land inside the already-ingested window.
    drain: Lane<E>,
    /// Unsorted calendar buckets; bucket `slot % NUM_BUCKETS` holds the
    /// events of `slot` for slots in `[cursor_slot, cursor_slot + N)`.
    buckets: Vec<Lane<E>>,
    /// One bit per bucket: whether it holds any events.
    occupied: Vec<u64>,
    /// First slot not yet ingested into `drain`.
    cursor_slot: u64,
    /// Events currently resident in `buckets`.
    in_buckets: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty hybrid-engine queue at instant zero.
    pub fn new() -> Self {
        Self::with_engine(Engine::Hybrid)
    }

    /// Creates an empty queue backed by the reference binary-heap
    /// engine (used by equivalence tests and the engine benchmark).
    pub fn new_heap_only() -> Self {
        Self::with_engine(Engine::HeapOnly)
    }

    /// Creates an empty queue with an explicit engine choice.
    pub fn with_engine(engine: Engine) -> Self {
        let n = match engine {
            Engine::Hybrid => NUM_BUCKETS,
            Engine::HeapOnly => 0,
        };
        EventQueue {
            engine,
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            pending: 0,
            heap: BinaryHeap::new(),
            drain: Lane::new(),
            buckets: (0..n).map(|_| Lane::new()).collect(),
            occupied: vec![0u64; n.div_ceil(64)],
            cursor_slot: 0,
            in_buckets: 0,
        }
    }

    /// The engine backing this queue.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The current simulated instant (the timestamp of the last popped
    /// event, or zero if nothing has been popped yet).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events popped over the queue's lifetime (the engine
    /// benchmark's events/sec numerator).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    fn slot_of(&self, at: SimTime) -> u64 {
        at.as_ps() >> SLOT_SHIFT
    }

    /// Schedules `event` for delivery at absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`EventQueue::now`]); a
    /// discrete-event simulation must never travel backwards.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at}, now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.pending += 1;
        if self.buckets.is_empty() {
            self.heap.push(Scheduled { at, seq, event });
            return;
        }
        // With the calendar empty the cursor can jump over quiet gaps,
        // keeping the bucket window anchored at the present.
        if self.in_buckets == 0 && self.drain.is_empty() {
            let now_slot = self.slot_of(self.now);
            if now_slot > self.cursor_slot {
                self.cursor_slot = now_slot;
            }
        }
        let slot = self.slot_of(at);
        if slot < self.cursor_slot {
            // Inside the already-ingested window: merge into the sorted
            // drain at its (at, seq) position.
            self.drain.insert_sorted(at, seq, event);
        } else if slot - self.cursor_slot < self.buckets.len() as u64 {
            let idx = usize::try_from(slot % self.buckets.len() as u64)
                .expect("bucket count fits usize");
            self.buckets[idx].push(at, seq, event);
            self.occupied[idx / 64] |= 1u64 << (idx % 64);
            self.in_buckets += 1;
        } else {
            self.heap.push(Scheduled { at, seq, event });
        }
    }

    /// Schedules `event` for delivery `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Index of the first occupied bucket at or (cyclically) after
    /// `start`. Only meaningful while `in_buckets > 0`.
    fn next_occupied(&self, start: usize) -> usize {
        let words = self.occupied.len();
        let w0 = start / 64;
        let masked = self.occupied[w0] & (!0u64 << (start % 64));
        if masked != 0 {
            return w0 * 64 + usize::try_from(masked.trailing_zeros()).expect("bit index");
        }
        for step in 1..=words {
            let w = (w0 + step) % words;
            if self.occupied[w] != 0 {
                return w * 64
                    + usize::try_from(self.occupied[w].trailing_zeros()).expect("bit index");
            }
        }
        unreachable!("next_occupied called with empty calendar");
    }

    /// Refills `drain` from the next occupied bucket when it runs dry.
    fn ensure_drain(&mut self) {
        if !self.drain.is_empty() || self.in_buckets == 0 {
            return;
        }
        let n = self.buckets.len() as u64;
        let start = usize::try_from(self.cursor_slot % n).expect("bucket count fits usize");
        let idx = self.next_occupied(start);
        let delta = if idx >= start {
            (idx - start) as u64
        } else {
            n - (start - idx) as u64
        };
        // Swap keeps the bucket's allocations alive for its next lap.
        std::mem::swap(&mut self.drain, &mut self.buckets[idx]);
        self.occupied[idx / 64] &= !(1u64 << (idx % 64));
        self.in_buckets -= self.drain.len();
        self.drain.sort_descending();
        self.cursor_slot = self.cursor_slot + delta + 1;
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// delivery time. Returns `None` when the queue is exhausted.
    ///
    /// With the `sanitize` feature on, asserts that simulated time never
    /// regresses — the ordering invariant every simulation depends on.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.ensure_drain();
        let from_heap = match (self.drain.last_key(), self.heap.peek()) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(d), Some(h)) => (h.at, h.seq) < d,
        };
        let (at, event) = if from_heap {
            let sch = self.heap.pop().expect("peeked event exists");
            (sch.at, sch.event)
        } else {
            let (at, _, event) = self.drain.pop().expect("peeked event exists");
            (at, event)
        };
        #[cfg(feature = "sanitize")]
        assert!(
            at >= self.now,
            "sanitize: event queue clock regressed: {} -> {}",
            self.now,
            at
        );
        self.pending -= 1;
        self.popped += 1;
        self.now = at;
        Some((at, event))
    }

    /// Pops the next event only when it is due at exactly the current
    /// instant **and** `pred` accepts it; otherwise leaves the queue
    /// untouched and returns `None`.
    ///
    /// This is the flit-burst batching hook: after popping one event, a
    /// simulation can drain every coincident sibling (same instant, same
    /// kind) and process the burst in one pass instead of re-entering
    /// its dispatch loop per event.
    pub fn pop_coincident<F>(&mut self, pred: F) -> Option<E>
    where
        F: FnOnce(&E) -> bool,
    {
        self.ensure_drain();
        let from_heap = match (self.drain.last_key(), self.heap.peek()) {
            (None, None) => return None,
            (None, Some(h)) => {
                if h.at != self.now {
                    return None;
                }
                true
            }
            (Some((at, _)), None) => {
                if at != self.now {
                    return None;
                }
                false
            }
            (Some(d), Some(h)) => {
                let heap_first = (h.at, h.seq) < d;
                let front_at = if heap_first { h.at } else { d.0 };
                if front_at != self.now {
                    return None;
                }
                heap_first
            }
        };
        let accepted = if from_heap {
            pred(&self.heap.peek().expect("peeked event exists").event)
        } else {
            pred(self.drain.peek_event().expect("peeked event exists"))
        };
        if !accepted {
            return None;
        }
        let event = if from_heap {
            self.heap.pop().expect("peeked event exists").event
        } else {
            self.drain.pop().expect("peeked event exists").2
        };
        self.pending -= 1;
        self.popped += 1;
        Some(event)
    }

    /// The delivery time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        let near = if let Some((at, _)) = self.drain.last_key() {
            Some(at)
        } else if self.in_buckets > 0 {
            let n = self.buckets.len() as u64;
            let start = usize::try_from(self.cursor_slot % n).expect("bucket count fits usize");
            let idx = self.next_occupied(start);
            self.buckets[idx].min_time()
        } else {
            None
        };
        let far = self.heap.peek().map(|s| s.at);
        match (near, far) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Whether there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Drains events while `cond(next_event_time)` holds, applying `f`.
    ///
    /// Runs the classic event loop "until time T" pattern without the
    /// caller owning the loop. Returns the number of events processed.
    pub fn run_while<F, C>(&mut self, mut cond: C, mut f: F) -> u64
    where
        F: FnMut(&mut Self, SimTime, E),
        C: FnMut(SimTime) -> bool,
    {
        let mut n = 0;
        while let Some(t) = self.peek_time() {
            if !cond(t) {
                break;
            }
            let (t, ev) = self.pop().expect("peeked event exists");
            f(self, t, ev);
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs every test body against both engines.
    fn on_both_engines(test: impl Fn(EventQueue<i32>)) {
        test(EventQueue::new());
        test(EventQueue::new_heap_only());
    }

    #[test]
    fn pops_in_time_order() {
        on_both_engines(|mut q| {
            q.schedule(SimTime::from_ns(30), 3);
            q.schedule(SimTime::from_ns(10), 1);
            q.schedule(SimTime::from_ns(20), 2);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3]);
        });
    }

    #[test]
    fn ties_break_fifo() {
        on_both_engines(|mut q| {
            let t = SimTime::from_ns(5);
            for i in 0..100 {
                q.schedule(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(7));
        assert_eq!(q.popped(), 1);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), "a");
        q.pop();
        q.schedule_in(SimTime::from_ns(5), "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(15)));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn run_while_stops_at_horizon() {
        let mut q = EventQueue::new();
        for i in 1..=10u64 {
            q.schedule(SimTime::from_ns(i), i);
        }
        let mut seen = Vec::new();
        let horizon = SimTime::from_ns(5);
        let n = q.run_while(|t| t <= horizon, |_, _, e| seen.push(e));
        assert_eq!(n, 5);
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn run_while_can_reschedule() {
        // A self-perpetuating ticker: each event schedules the next.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(1), ());
        let horizon = SimTime::from_ns(100);
        let n = q.run_while(
            |t| t <= horizon,
            |q, _, ()| {
                q.schedule_in(SimTime::from_ns(1), ());
            },
        );
        assert_eq!(n, 100);
    }

    #[test]
    fn engines_agree_on_a_mixed_schedule() {
        // Near ticks, far timers, same-instant bursts and late merges —
        // the pop order must be identical event for event.
        let mut hybrid = EventQueue::new();
        let mut heap = EventQueue::new_heap_only();
        let mut tag = 0u32;
        for round in 0..50u64 {
            for (q, _) in [(&mut hybrid, 0), (&mut heap, 1)] {
                q.schedule(SimTime::from_ps(round * 2_494), tag);
                q.schedule(SimTime::from_ns(round * 3 + 950), tag + 1);
                q.schedule(SimTime::from_us(round + 10), tag + 2);
                // Same-instant burst.
                q.schedule(SimTime::from_ns(40), tag + 3);
            }
            tag += 4;
        }
        loop {
            let a = hybrid.pop();
            let b = heap.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn engines_agree_under_interleaved_pop_and_schedule() {
        let mut hybrid = EventQueue::new();
        let mut heap = EventQueue::new_heap_only();
        for q in [&mut hybrid, &mut heap] {
            q.schedule(SimTime::from_ns(1), 0);
        }
        // Each popped event reschedules two successors (one near, one
        // far), exercising drain merges and cursor fast-forwarding.
        for step in 0..2_000u64 {
            let a = hybrid.pop();
            let b = heap.pop();
            assert_eq!(a, b, "step {step}");
            let Some((_, v)) = a else { break };
            if v < 300 {
                for q in [&mut hybrid, &mut heap] {
                    q.schedule_in(SimTime::from_ps(2_494), v + 1);
                    q.schedule_in(SimTime::from_us(5), v + 2);
                }
            }
        }
    }

    #[test]
    fn far_future_events_cross_the_calendar_horizon() {
        let mut q = EventQueue::new();
        // Beyond the ~4.2 µs calendar window: takes the heap path.
        q.schedule(SimTime::from_ms(50), "far");
        q.schedule(SimTime::from_ns(3), "near");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.now(), SimTime::from_ms(50));
        // After the jump the calendar re-anchors at the present.
        q.schedule_in(SimTime::from_ns(1), "tail");
        assert_eq!(q.pop().unwrap().1, "tail");
    }

    #[test]
    fn pop_coincident_drains_same_instant_only() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        q.schedule(t, 1);
        q.schedule(t, 2);
        q.schedule(t, 3);
        q.schedule(SimTime::from_ns(6), 4);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop_coincident(|e| *e == 2), Some(2));
        // Predicate rejection leaves the event queued.
        assert_eq!(q.pop_coincident(|e| *e == 99), None);
        assert_eq!(q.pop_coincident(|_| true), Some(3));
        // Next event is at a later instant: not coincident.
        assert_eq!(q.pop_coincident(|_| true), None);
        assert_eq!(q.pop().unwrap().1, 4);
    }

    #[test]
    fn soa_lanes_recycle_across_bucket_laps() {
        // The slot arena truncates whenever a lane empties; pouring many
        // laps through the same buckets must keep FIFO order intact as
        // slots and keys are reused.
        let mut q = EventQueue::new();
        for lap in 0..100u64 {
            for i in 0..64u64 {
                q.schedule(SimTime::from_ns(lap * 10 + 1), (lap, i));
            }
            for i in 0..64u64 {
                assert_eq!(q.pop().unwrap().1, (lap, i));
            }
        }
        assert!(q.is_empty());
        assert_eq!(q.popped(), 6_400);
    }

    #[test]
    fn late_schedule_into_ingested_window_merges_in_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(100), 1);
        q.schedule(SimTime::from_ns(100), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        // now == 100 ns; the 100 ns slot is already ingested into the
        // drain, so this merges mid-drain and must pop FIFO after 2.
        q.schedule(SimTime::from_ns(100), 3);
        q.schedule(SimTime::from_ps(100_500), 4);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
    }
}
