//! Discrete-event simulation toolkit underpinning the ThymesisFlow model.
//!
//! Every other crate in the workspace builds on the primitives here:
//!
//! * [`time`] — picosecond-resolution simulated time ([`time::SimTime`]).
//! * [`units`] — byte/size and frequency constants shared across crates.
//! * [`event`] — a deterministic event queue ([`event::EventQueue`]).
//! * [`rng`] — a seedable random source with the samplers the paper's
//!   workloads need (zipf, exponential, log-normal, …).
//! * [`stats`] — log-bucketed histograms, CDF extraction and online
//!   mean/variance used by every benchmark harness.
//! * [`bandwidth`] — serialization-delay models for links and memory ports.
//! * [`queue`] — bounded FIFOs with occupancy accounting.
//! * [`sweep`] — parallel sweep harness with deterministic per-point
//!   RNG streams (worker count never changes the output).
//! * [`partition`] — conservative time-window runner for partitioned
//!   parallel simulation (lookahead-bounded windows, barrier-exchanged
//!   mailboxes, bit-identical for any worker count).
//! * [`telemetry`] — a metrics registry (counters, gauges,
//!   histogram-backed timers) keyed by hierarchical paths, clocked by
//!   simulated time and near-free when disabled.
//! * [`obs`] — continuous observation on the registry: a cadence-driven
//!   [`obs::Recorder`] ring of windowed deltas with rate queries, plus
//!   a Prometheus-style text exposition exporter.
//!
//! # Example
//!
//! ```
//! use simkit::event::EventQueue;
//! use simkit::time::SimTime;
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(SimTime::from_ns(5), "second");
//! q.schedule(SimTime::from_ns(1), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t.as_ns(), ev), (1, "first"));
//! ```

pub mod bandwidth;
pub mod event;
pub mod obs;
pub mod partition;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod sweep;
pub mod telemetry;
pub mod time;
pub mod units;

pub use event::EventQueue;
pub use rng::DetRng;
pub use stats::Histogram;
pub use telemetry::Registry;
pub use time::SimTime;
