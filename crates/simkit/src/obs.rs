//! Continuous observation on top of [`telemetry`](crate::telemetry): a
//! [`Recorder`] that folds registry snapshots taken on a sim-time
//! cadence into a bounded ring of windowed deltas, plus a
//! Prometheus-style text exposition exporter.
//!
//! The recorder is *pull-based and passive*: the simulation loop asks
//! [`Recorder::due`] whether the cadence has elapsed and, when it has,
//! hands over a [`Snapshot`](crate::telemetry::Snapshot). Recording
//! never schedules events, reads wall clocks, or touches simulation
//! state, so an instrumented run keeps the exact trajectory of an
//! uninstrumented one — the same determinism contract the registry
//! itself makes.
//!
//! Each accepted snapshot closes a **window**: the ring keeps the
//! cumulative snapshot plus the delta against the previous window
//! (counters and timers subtract, gauges keep the newer reading), which
//! is what rate queries ([`Recorder::rate`]) and windowed histograms
//! ([`Recorder::window_timer`]) are answered from. The ring is bounded:
//! once `capacity` windows are held, the oldest falls off.
//!
//! # Example
//!
//! ```
//! use simkit::obs::Recorder;
//! use simkit::telemetry::Registry;
//! use simkit::time::SimTime;
//!
//! # fn main() -> Result<(), simkit::telemetry::TelemetryError> {
//! let mut reg = Registry::new(true);
//! let frames = reg.counter("link.frames")?;
//! let mut rec = Recorder::new(SimTime::from_us(1), 8);
//!
//! // ... simulation runs; in its loop:
//! reg.add(frames, 500);
//! let now = SimTime::from_us(1);
//! if rec.due(now) {
//!     rec.record(reg.snapshot(now));
//! }
//! assert_eq!(rec.rate("link.frames"), Some(500e6)); // per second
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::stats::Histogram;
use crate::telemetry::{Metric, Snapshot};
use crate::time::SimTime;

/// One closed observation window in a [`Recorder`]'s ring.
#[derive(Debug, Clone)]
pub struct Window {
    /// Where the window opened (the previous window's close, or
    /// [`SimTime::ZERO`] for the first).
    pub start: SimTime,
    /// Where the window closed (the accepted snapshot's timestamp).
    pub end: SimTime,
    /// Cumulative values at `end`.
    pub cumulative: Snapshot,
    /// Change over this window: counters/timers subtracted against the
    /// previous cumulative snapshot, gauges as read at `end`.
    pub delta: Snapshot,
}

impl Window {
    /// Window length.
    pub fn span(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }
}

/// Folds cadence-driven registry snapshots into a bounded ring of
/// windowed deltas (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct Recorder {
    period: SimTime,
    capacity: usize,
    next_due: SimTime,
    last_cumulative: Option<Snapshot>,
    last_end: SimTime,
    windows: VecDeque<Window>,
    accepted: u64,
}

impl Recorder {
    /// A recorder sampling every `period` of simulated time, holding at
    /// most `capacity` closed windows (at least one is always kept).
    pub fn new(period: SimTime, capacity: usize) -> Self {
        Recorder {
            period,
            capacity: capacity.max(1),
            next_due: period,
            last_cumulative: None,
            last_end: SimTime::ZERO,
            windows: VecDeque::new(),
            accepted: 0,
        }
    }

    /// The sampling cadence.
    pub fn period(&self) -> SimTime {
        self.period
    }

    /// Whether the cadence has elapsed and the caller should hand over a
    /// fresh snapshot via [`Recorder::record`].
    pub fn due(&self, now: SimTime) -> bool {
        now >= self.next_due
    }

    /// Closes a window with `snap` and advances the cadence. Accepts
    /// out-of-cadence snapshots too (e.g. one final snapshot at the end
    /// of a run) as long as time moved forward; stale snapshots (at or
    /// before the last accepted one) are ignored so replayed polls can
    /// never fork the ring.
    pub fn record(&mut self, snap: Snapshot) {
        if self.accepted > 0 && snap.at <= self.last_end {
            return;
        }
        let delta = match &self.last_cumulative {
            Some(prev) => snap.diff(prev),
            None => snap.clone(),
        };
        let window = Window {
            start: self.last_end,
            end: snap.at,
            cumulative: snap.clone(),
            delta,
        };
        self.last_end = snap.at;
        self.last_cumulative = Some(snap);
        self.windows.push_back(window);
        while self.windows.len() > self.capacity {
            self.windows.pop_front();
        }
        self.accepted += 1;
        // Re-align the cadence past the accepted timestamp so a late
        // snapshot doesn't trigger an immediate catch-up burst.
        while self.next_due <= self.last_end {
            self.next_due = self.next_due + self.period;
        }
    }

    /// Closed windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &Window> {
        self.windows.iter()
    }

    /// The most recently closed window.
    pub fn latest(&self) -> Option<&Window> {
        self.windows.back()
    }

    /// Total snapshots accepted over the recorder's lifetime (ring
    /// evictions included).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Counter rate over the latest window, in events per simulated
    /// second, from the windowed delta. `None` when no window is closed,
    /// the path is not a counter, or the window has zero span.
    ///
    /// Answered purely from the ring: the latest *closed* window is the
    /// freshest data the recorder can have, and [`Recorder::record`]
    /// already refuses snapshots that would rewind it, so there is no
    /// staleness decision left for a caller-supplied clock to make.
    /// (Earlier revisions took an unused `now` parameter here.)
    pub fn rate(&self, path: &str) -> Option<f64> {
        let w = self.latest()?;
        let span_ns = w.span().as_ns();
        if span_ns == 0 {
            return None;
        }
        let delta = w.delta.counter(path)?;
        Some(delta as f64 * 1e9 / span_ns as f64)
    }

    /// Per-window counter deltas for `path`, oldest first — the discrete
    /// derivative of the counter over the ring.
    pub fn deltas(&self, path: &str) -> Vec<(SimTime, u64)> {
        self.windows
            .iter()
            .filter_map(|w| w.delta.counter(path).map(|d| (w.end, d)))
            .collect()
    }

    /// The latest window's timer histogram for `path` — only the
    /// durations recorded *within* that window.
    pub fn window_timer(&self, path: &str) -> Option<&Histogram> {
        self.latest()?.delta.timer(path)
    }
}

/// One named segment of a [`PhaseClock`]'s ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// The phase's name (e.g. `"steady"`, `"peak"`).
    pub name: String,
    /// Where the phase opens on the scenario clock (inclusive).
    pub start: SimTime,
    /// Where the phase closes (exclusive; the next phase's start).
    pub end: SimTime,
}

impl Phase {
    /// Phase length.
    pub fn span(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }
}

/// A scenario's phase ladder on the simulated clock: an ordered list
/// of named segments (steady → peak → recovery, a diurnal cycle, a
/// chaos ladder) laid end to end from [`SimTime::ZERO`].
///
/// Like the [`Recorder`], the clock is passive: it never schedules
/// events, it only answers *which phase an instant belongs to*, so a
/// scenario driver can segment one continuous simulation into
/// windows-per-phase without perturbing the trajectory. Phases are
/// half-open `[start, end)`; instants at or past the ladder's total
/// belong to no phase (the scenario is over).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseClock {
    phases: Vec<Phase>,
}

impl PhaseClock {
    /// Lays the `(name, duration)` segments end to end from zero.
    /// Zero-duration segments are dropped (they could never own an
    /// instant).
    pub fn new<I, S>(segments: I) -> Self
    where
        I: IntoIterator<Item = (S, SimTime)>,
        S: Into<String>,
    {
        let mut phases = Vec::new();
        let mut cursor = SimTime::ZERO;
        for (name, duration) in segments {
            if duration.is_zero() {
                continue;
            }
            let start = cursor;
            cursor = cursor + duration;
            phases.push(Phase {
                name: name.into(),
                start,
                end: cursor,
            });
        }
        PhaseClock { phases }
    }

    /// The ladder's segments, in order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether the ladder is empty.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Total ladder length (the last phase's end).
    pub fn total(&self) -> SimTime {
        self.phases.last().map(|p| p.end).unwrap_or(SimTime::ZERO)
    }

    /// The phase owning instant `now`, with its index — `None` once the
    /// ladder is over (or before it exists).
    pub fn phase_at(&self, now: SimTime) -> Option<(usize, &Phase)> {
        self.phases
            .iter()
            .enumerate()
            .find(|(_, p)| p.start <= now && now < p.end)
    }
}

/// Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4): dotted paths become underscore-separated metric
/// names, counters and gauges export their value, timers export a
/// `summary` (quantile samples plus `_sum`/`_count`).
pub fn prometheus_exposition(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (path, metric) in &snap.metrics {
        let name = metric_name(path);
        match metric {
            Metric::Counter(n) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {n}");
            }
            Metric::Gauge(n) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {n}");
            }
            Metric::Timer(h) => {
                let _ = writeln!(out, "# TYPE {name} summary");
                for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")] {
                    // An empty summary has no quantiles; Prometheus
                    // renders that as NaN, never as a fake 0 that a
                    // dashboard would read as "instant".
                    if h.is_empty() {
                        let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} NaN");
                    } else {
                        let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", h.quantile(q));
                    }
                }
                // The histogram is log-bucketed; the sum is reconstructed
                // from the mean, which is tracked exactly.
                let sum = h.mean() * h.count() as f64;
                let _ = writeln!(out, "{name}_sum {sum}");
                let _ = writeln!(out, "{name}_count {}", h.count());
            }
        }
    }
    out
}

/// A dotted telemetry path as a Prometheus metric name: every character
/// outside `[a-zA-Z0-9_]` becomes `_`, and a leading digit gets a `_`
/// prefix.
fn metric_name(path: &str) -> String {
    let mut name = String::with_capacity(path.len() + 1);
    for (i, c) in path.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                name.push('_');
            }
            name.push(c);
        } else {
            name.push('_');
        }
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Registry;

    fn registry() -> (Registry, crate::telemetry::CounterId) {
        let mut reg = Registry::new(true);
        let c = reg.counter("link.frames").unwrap();
        (reg, c)
    }

    #[test]
    fn cadence_pulls_and_windows_close_in_order() {
        let (mut reg, c) = registry();
        let mut rec = Recorder::new(SimTime::from_us(1), 4);
        assert!(!rec.due(SimTime::from_ns(999)));
        for k in 1..=3u64 {
            reg.add(c, 10 * k);
            let now = SimTime::from_us(k);
            assert!(rec.due(now));
            rec.record(reg.snapshot(now));
            assert!(!rec.due(now));
        }
        let deltas: Vec<u64> = rec.deltas("link.frames").iter().map(|(_, d)| *d).collect();
        assert_eq!(deltas, vec![10, 20, 30]);
    }

    #[test]
    fn ring_is_bounded_and_rate_uses_latest_window() {
        let (mut reg, c) = registry();
        let mut rec = Recorder::new(SimTime::from_us(1), 2);
        for k in 1..=5u64 {
            reg.add(c, 100);
            rec.record(reg.snapshot(SimTime::from_us(k)));
        }
        assert_eq!(rec.windows().count(), 2);
        assert_eq!(rec.accepted(), 5);
        // 100 frames over a 1 µs window = 1e8 per second.
        assert_eq!(rec.rate("link.frames"), Some(1e8));
    }

    #[test]
    fn stale_snapshots_are_ignored() {
        let (mut reg, c) = registry();
        let mut rec = Recorder::new(SimTime::from_us(1), 4);
        reg.add(c, 5);
        rec.record(reg.snapshot(SimTime::from_us(1)));
        reg.add(c, 5);
        rec.record(reg.snapshot(SimTime::from_us(1))); // same instant: dropped
        assert_eq!(rec.windows().count(), 1);
        assert_eq!(rec.accepted(), 1);
    }

    #[test]
    fn late_snapshot_realigns_cadence_without_burst() {
        let (reg, _) = registry();
        let mut rec = Recorder::new(SimTime::from_us(1), 4);
        // Poll arrives late, at 3.5 µs; next due must be 4 µs, not 2 µs.
        rec.record(reg.snapshot(SimTime::from_ns(3_500)));
        assert!(!rec.due(SimTime::from_ns(3_900)));
        assert!(rec.due(SimTime::from_us(4)));
    }

    #[test]
    fn window_timer_holds_only_the_windows_samples() {
        let mut reg = Registry::new(true);
        let t = reg.timer("rtt").unwrap();
        let mut rec = Recorder::new(SimTime::from_us(1), 4);
        reg.record_ns(t, 100);
        rec.record(reg.snapshot(SimTime::from_us(1)));
        reg.record_ns(t, 900);
        rec.record(reg.snapshot(SimTime::from_us(2)));
        let h = rec.window_timer("rtt").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 900);
    }

    #[test]
    fn prometheus_exposition_renders_all_kinds() {
        let mut reg = Registry::new(true);
        let c = reg.counter("fabric.link0.fwd.frames").unwrap();
        let g = reg.gauge("fabric.link0.up.credits").unwrap();
        let t = reg.timer("fabric.path0.rtt_ns").unwrap();
        reg.add(c, 42);
        reg.set_gauge(g, 7);
        reg.record_ns(t, 950);
        let text = prometheus_exposition(&reg.snapshot(SimTime::from_us(1)));
        assert!(text.contains("# TYPE fabric_link0_fwd_frames counter"));
        assert!(text.contains("fabric_link0_fwd_frames 42"));
        assert!(text.contains("# TYPE fabric_link0_up_credits gauge"));
        assert!(text.contains("fabric_link0_up_credits 7"));
        assert!(text.contains("# TYPE fabric_path0_rtt_ns summary"));
        assert!(text.contains("fabric_path0_rtt_ns{quantile=\"0.99\"} 950"));
        assert!(text.contains("fabric_path0_rtt_ns_count 1"));
    }

    #[test]
    fn phase_clock_segments_the_ladder_half_open() {
        let clock = PhaseClock::new([
            ("steady", SimTime::from_us(100)),
            ("idle", SimTime::ZERO), // dropped
            ("peak", SimTime::from_us(200)),
            ("recovery", SimTime::from_us(100)),
        ]);
        assert_eq!(clock.len(), 3);
        assert_eq!(clock.total(), SimTime::from_us(400));
        let (i, p) = clock.phase_at(SimTime::ZERO).unwrap();
        assert_eq!((i, p.name.as_str()), (0, "steady"));
        // Boundaries belong to the opening phase.
        let (i, p) = clock.phase_at(SimTime::from_us(100)).unwrap();
        assert_eq!((i, p.name.as_str()), (1, "peak"));
        assert_eq!(p.span(), SimTime::from_us(200));
        let (i, _) = clock.phase_at(SimTime::from_ns(399_999)).unwrap();
        assert_eq!(i, 2);
        // The ladder's end belongs to no phase.
        assert!(clock.phase_at(SimTime::from_us(400)).is_none());
        assert!(PhaseClock::new(Vec::<(String, SimTime)>::new()).is_empty());
    }

    #[test]
    fn empty_summary_renders_nan_quantiles_not_zero() {
        let mut reg = Registry::new(true);
        let _t = reg.timer("idle.path.rtt_ns").unwrap();
        let text = prometheus_exposition(&reg.snapshot(SimTime::from_us(1)));
        assert!(text.contains("# TYPE idle_path_rtt_ns summary"));
        assert!(text.contains("idle_path_rtt_ns{quantile=\"0.99\"} NaN"));
        assert!(text.contains("idle_path_rtt_ns_count 0"));
        assert!(
            !text.contains("idle_path_rtt_ns{quantile=\"0.99\"} 0"),
            "an idle summary must not report a 0 ns quantile:\n{text}"
        );
    }

    #[test]
    fn metric_names_sanitize_and_never_start_with_a_digit() {
        assert_eq!(metric_name("fabric.link-0.frames"), "fabric_link_0_frames");
        assert_eq!(metric_name("9lives"), "_9lives");
    }
}
