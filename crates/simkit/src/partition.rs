//! Conservative time-window partition runner: the parallel simulation
//! core behind the partitioned fabric engine.
//!
//! A simulation is cut into **partitions**, each a self-contained
//! discrete-event engine. Partitions interact only through timestamped
//! messages whose delivery lags their send by at least the **lookahead**
//! — in the fabric, the minimum latency of any link crossing a
//! partition boundary. That bound is exactly what conservative parallel
//! DES needs: within a window no partition can receive anything that
//! would rewrite its past, so every partition may run independently.
//!
//! Each round the runner:
//!
//! 1. takes the earliest pending event time across all partitions,
//!    `t_min`, and sets the window bound to `t_min + lookahead`;
//! 2. lets every partition process its local events strictly before the
//!    bound, buffering outgoing cross-partition messages in an
//!    [`Outbox`] (every message processed this window is stamped at or
//!    after its send time plus the lookahead, hence at or after the
//!    bound — the runner rejects violations with a typed error);
//! 3. exchanges the outboxes at a barrier and delivers every message in
//!    the total order `(destination, at, source, source-sequence)`.
//!
//! Worker count is an execution detail: partitions are dealt round-robin
//! onto workers, and because the window bound, the message order and
//! each partition's internal execution are all independent of scheduling,
//! **one worker and N workers produce bit-identical simulations**. The
//! `partitioned_determinism` suite pins that guarantee over the fabric.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use crate::time::SimTime;

/// Sentinel for "no pending events" in the per-worker minimum slots.
const IDLE: u64 = u64::MAX;

/// One partition of a conservatively synchronized simulation.
///
/// Implementations are sequential simulations; all cross-thread
/// machinery lives in [`run_conservative`].
pub trait Partition {
    /// Cross-partition message payload.
    type Msg: Send;
    /// Partition-level failure.
    type Error: Send;

    /// Delivery time of the partition's earliest pending event.
    fn next_event_time(&self) -> Option<SimTime>;

    /// Processes every local event strictly before `bound`, sending
    /// cross-partition traffic through `outbox`. Events scheduled at or
    /// after `bound` must stay queued for a later window.
    ///
    /// # Errors
    ///
    /// Propagates the partition's own simulation failures.
    fn run_window(
        &mut self,
        bound: SimTime,
        outbox: &mut Outbox<Self::Msg>,
    ) -> Result<(), Self::Error>;

    /// Accepts one cross-partition message for local effect at `at`
    /// (never earlier than the window bound it was exchanged under).
    ///
    /// # Errors
    ///
    /// Propagates the partition's own simulation failures.
    fn deliver(&mut self, at: SimTime, msg: Self::Msg) -> Result<(), Self::Error>;
}

/// A cross-partition message in flight between two barrier exchanges.
#[derive(Debug)]
struct Envelope<M> {
    dest: usize,
    at: SimTime,
    src: usize,
    seq: u64,
    msg: M,
}

impl<M> Envelope<M> {
    /// The total delivery order: destination partition first (so one
    /// worker's deliveries group), then time, then source and source
    /// sequence as deterministic tie-breaks.
    fn key(&self) -> (usize, SimTime, usize, u64) {
        (self.dest, self.at, self.src, self.seq)
    }
}

/// Per-partition buffer of outgoing cross-partition messages for the
/// current window. Sequence numbers are per source partition and
/// monotonic over the whole run, giving ties a scheduling-independent
/// order.
#[derive(Debug)]
pub struct Outbox<M> {
    src: usize,
    seq: u64,
    msgs: Vec<Envelope<M>>,
}

impl<M> Outbox<M> {
    fn new(src: usize) -> Self {
        Outbox {
            src,
            seq: 0,
            msgs: Vec::new(),
        }
    }

    /// Sends `msg` to partition `dest` for effect at `at`. The runner
    /// rejects the whole window if `at` precedes the window bound — the
    /// sender must add at least the lookahead to its current instant.
    pub fn send(&mut self, dest: usize, at: SimTime, msg: M) {
        self.msgs.push(Envelope {
            dest,
            at,
            src: self.src,
            seq: self.seq,
            msg,
        });
        self.seq += 1;
    }

    /// The partition index this outbox belongs to.
    pub fn source(&self) -> usize {
        self.src
    }
}

/// Why a conservative run stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError<E> {
    /// A zero lookahead admits same-instant cross-partition effects,
    /// which no conservative window can order; refuse up front.
    ZeroLookahead,
    /// The partition set was empty.
    NoPartitions,
    /// A message named a partition index outside the set.
    UnknownDestination {
        /// The bogus index.
        dest: usize,
        /// Number of partitions in the run.
        partitions: usize,
    },
    /// A message was stamped earlier than the window bound it was sent
    /// under — the sender undercut the lookahead contract.
    LookaheadViolation {
        /// The offending delivery time.
        at: SimTime,
        /// The window bound in force.
        bound: SimTime,
        /// Sending partition.
        src: usize,
        /// Destination partition.
        dest: usize,
    },
    /// A partition's own simulation failed.
    Partition(E),
}

impl<E: std::fmt::Display> std::fmt::Display for PartitionError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::ZeroLookahead => {
                write!(f, "conservative windows need a nonzero lookahead")
            }
            PartitionError::NoPartitions => write!(f, "no partitions to run"),
            PartitionError::UnknownDestination { dest, partitions } => {
                write!(f, "message to partition {dest} of {partitions}")
            }
            PartitionError::LookaheadViolation {
                at,
                bound,
                src,
                dest,
            } => write!(
                f,
                "partition {src} sent {dest} a message at {at}, before the window bound {bound}"
            ),
            PartitionError::Partition(e) => write!(f, "partition failed: {e}"),
        }
    }
}

impl<E: std::fmt::Debug + std::fmt::Display> std::error::Error for PartitionError<E> {}

/// Observable clock for benchmark instrumentation: [`run_conservative_timed`]
/// brackets each worker's window execution with [`WindowClock::stamp`]
/// and reports the per-worker busy sums. Simulation crates pass
/// [`NullClock`]; only benchmark harnesses (where wall-clock reads are
/// sanctioned) provide a real one.
pub trait WindowClock: Sync {
    /// A monotonic stamp in the clock's own units (e.g. nanoseconds).
    fn stamp(&self) -> u64;
}

/// The no-op clock: busy times read zero.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullClock;

impl WindowClock for NullClock {
    fn stamp(&self) -> u64 {
        0
    }
}

/// What a conservative run did, in scheduling-independent numbers plus
/// per-worker busy time in [`WindowClock`] units (the one quantity that
/// legitimately varies with worker count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunStats {
    /// Windows executed (barrier rounds).
    pub windows: u64,
    /// Cross-partition messages exchanged.
    pub messages: u64,
    /// Per-worker busy time: the sum of each worker's window-execution
    /// stamps, excluding barrier waits. The maximum entry is the
    /// parallel critical path.
    pub busy: Vec<u64>,
    /// Per-worker time spent waiting at the round barriers, in
    /// [`WindowClock`] units — the synchronization overhead the busy
    /// sums exclude. All zeros under [`NullClock`] and on the
    /// single-worker path (which has no barriers).
    pub barrier_stall: Vec<u64>,
    /// Per-*partition* window occupancy: in how many windows each
    /// partition had work admitted (its earliest event fell before the
    /// bound). Derived purely from event times, so the counts are
    /// bit-identical for every worker count — a shard whose occupancy
    /// tracks `windows` is saturated; one far below it mostly idles at
    /// the barrier.
    pub occupancy: Vec<u64>,
}

impl RunStats {
    /// The longest per-worker busy time — the run's critical path in
    /// [`WindowClock`] units.
    pub fn critical_path(&self) -> u64 {
        self.busy.iter().copied().max().unwrap_or(0)
    }

    /// The longest per-worker barrier stall in [`WindowClock`] units.
    pub fn max_barrier_stall(&self) -> u64 {
        self.barrier_stall.iter().copied().max().unwrap_or(0)
    }

    /// Fraction of windows partition `i` had work in (1.0 = saturated),
    /// or 0.0 before any window closed.
    pub fn occupancy_frac(&self, i: usize) -> f64 {
        if self.windows == 0 {
            return 0.0;
        }
        self.occupancy.get(i).map_or(0.0, |&o| o as f64 / self.windows as f64)
    }
}

/// The conservative window bound for one round: the earliest pending
/// event across all partitions plus the lookahead. `None` when every
/// partition is drained (the run is over).
///
/// This is the safety argument in one line: every event processed this
/// round is at or after the returned `t_min`, so any message it sends
/// arrives at or after `t_min + lookahead` — the bound itself. Nothing
/// delivered at the barrier can land in a partition's processed past.
pub fn window_bound<I>(next_times: I, lookahead: SimTime) -> Option<SimTime>
where
    I: IntoIterator<Item = Option<SimTime>>,
{
    next_times
        .into_iter()
        .flatten()
        .min()
        .map(|t| t.checked_add(lookahead).expect("window bound fits SimTime"))
}

/// Runs `parts` to completion under conservative windows of `lookahead`,
/// on `workers` threads (1 runs inline). See the module docs for the
/// synchronization protocol; the output is bit-identical for every
/// worker count.
///
/// # Errors
///
/// Typed setup and protocol failures ([`PartitionError`]); partition
/// simulation errors come back wrapped in [`PartitionError::Partition`].
pub fn run_conservative<P>(
    parts: &mut [P],
    lookahead: SimTime,
    workers: usize,
) -> Result<RunStats, PartitionError<P::Error>>
where
    P: Partition + Send,
{
    run_conservative_timed(parts, lookahead, workers, &NullClock)
}

/// [`run_conservative`] with a benchmark clock: per-worker busy time
/// lands in [`RunStats::busy`].
///
/// # Errors
///
/// As [`run_conservative`].
pub fn run_conservative_timed<P, K>(
    parts: &mut [P],
    lookahead: SimTime,
    workers: usize,
    clock: &K,
) -> Result<RunStats, PartitionError<P::Error>>
where
    P: Partition + Send,
    K: WindowClock,
{
    if parts.is_empty() {
        return Err(PartitionError::NoPartitions);
    }
    if lookahead == SimTime::ZERO {
        return Err(PartitionError::ZeroLookahead);
    }
    let workers = workers.max(1).min(parts.len());
    if workers == 1 {
        run_sequential(parts, lookahead, clock)
    } else {
        run_parallel(parts, lookahead, workers, clock)
    }
}

/// Checks one window's outgoing envelopes against the lookahead
/// contract and the partition set.
fn validate<M, E>(
    envs: &[Envelope<M>],
    bound: SimTime,
    partitions: usize,
) -> Result<(), PartitionError<E>> {
    for env in envs {
        if env.dest >= partitions {
            return Err(PartitionError::UnknownDestination {
                dest: env.dest,
                partitions,
            });
        }
        if env.at < bound {
            return Err(PartitionError::LookaheadViolation {
                at: env.at,
                bound,
                src: env.src,
                dest: env.dest,
            });
        }
    }
    Ok(())
}

/// The single-worker reference execution: the same window structure,
/// bound computation and delivery order as the parallel path, run
/// inline. The determinism guarantee is that [`run_parallel`] matches
/// this bit for bit.
fn run_sequential<P, K>(
    parts: &mut [P],
    lookahead: SimTime,
    clock: &K,
) -> Result<RunStats, PartitionError<P::Error>>
where
    P: Partition,
    K: WindowClock,
{
    let n = parts.len();
    let mut outboxes: Vec<Outbox<P::Msg>> = (0..n).map(Outbox::new).collect();
    let mut pending: Vec<Envelope<P::Msg>> = Vec::new();
    let mut stats = RunStats {
        windows: 0,
        messages: 0,
        busy: vec![0],
        barrier_stall: vec![0],
        occupancy: vec![0; n],
    };
    loop {
        let Some(bound) = window_bound(parts.iter().map(Partition::next_event_time), lookahead)
        else {
            return Ok(stats);
        };
        stats.windows += 1;
        let t0 = clock.stamp();
        for (i, (part, outbox)) in parts.iter_mut().zip(outboxes.iter_mut()).enumerate() {
            if part.next_event_time().is_some_and(|t| t < bound) {
                stats.occupancy[i] += 1;
            }
            part.run_window(bound, outbox)
                .map_err(PartitionError::Partition)?;
        }
        stats.busy[0] += clock.stamp().saturating_sub(t0);
        pending.clear();
        for outbox in &mut outboxes {
            pending.append(&mut outbox.msgs);
        }
        validate(&pending, bound, n)?;
        pending.sort_unstable_by_key(Envelope::key);
        stats.messages += pending.len() as u64;
        for env in pending.drain(..) {
            parts[env.dest]
                .deliver(env.at, env.msg)
                .map_err(PartitionError::Partition)?;
        }
    }
}

/// The threaded execution: partitions are dealt round-robin onto
/// `workers` persistent scoped threads that advance in lockstep through
/// three barriers per round — publish local minima, exchange mail,
/// deliver — so every round's bound and delivery order replay the
/// sequential reference exactly.
fn run_parallel<P, K>(
    parts: &mut [P],
    lookahead: SimTime,
    workers: usize,
    clock: &K,
) -> Result<RunStats, PartitionError<P::Error>>
where
    P: Partition + Send,
    K: WindowClock,
{
    let n = parts.len();
    // Deal partitions (with their outboxes and global indices) onto
    // workers round-robin; each worker owns its slice exclusively.
    let mut owned: Vec<Vec<(usize, &mut P, Outbox<P::Msg>)>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (i, part) in parts.iter_mut().enumerate() {
        owned[i % workers].push((i, part, Outbox::new(i)));
    }

    let mins: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(IDLE)).collect();
    let busy: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let stall: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let occupancy: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    // Destination-worker mailboxes: senders append under the lock at
    // window end; the owner drains its own box after the barrier.
    let mail: Vec<Mutex<Vec<Envelope<P::Msg>>>> =
        (0..workers).map(|_| Mutex::new(Vec::new())).collect();
    let barrier = Barrier::new(workers);
    let fail: Mutex<Option<PartitionError<P::Error>>> = Mutex::new(None);
    let windows = AtomicU64::new(0);
    let messages = AtomicU64::new(0);

    let mins = &mins;
    let busy = &busy;
    let stall = &stall;
    let occupancy = &occupancy;
    let mail = &mail;
    let barrier = &barrier;
    let fail = &fail;
    let windows = &windows;
    let messages = &messages;

    std::thread::scope(|scope| {
        for (w, mut local) in owned.into_iter().enumerate() {
            scope.spawn(move || {
                let mut incoming: Vec<Envelope<P::Msg>> = Vec::new();
                loop {
                    // Phase A: check for failure, then publish this
                    // worker's earliest event. The failure flag is only
                    // ever written between barrier 1 and barrier 3 of a
                    // round (run/validate errors before barrier 2,
                    // delivery errors before barrier 3), so here —
                    // after barrier 3, before barrier 1 — it is frozen
                    // and every worker reads the same value. Checking it
                    // after barrier 1 instead would race with a faster
                    // worker already erroring inside the new round and
                    // strand the others at the next barrier.
                    if fail.lock().expect("partition failure lock poisoned").is_some() {
                        return;
                    }
                    let local_min = local
                        .iter()
                        .filter_map(|(_, p, _)| p.next_event_time())
                        .min()
                        .map_or(IDLE, SimTime::as_ps);
                    mins[w].store(local_min, Ordering::SeqCst);
                    let b0 = clock.stamp();
                    barrier.wait();
                    stall[w].fetch_add(clock.stamp().saturating_sub(b0), Ordering::Relaxed);

                    // Phase B: agree on the round. Every worker reads the
                    // same published slots, so all take the same branch.
                    let global = mins
                        .iter()
                        .map(|m| m.load(Ordering::SeqCst))
                        .min()
                        .unwrap_or(IDLE);
                    if global == IDLE {
                        return;
                    }
                    if w == 0 {
                        windows.fetch_add(1, Ordering::Relaxed);
                    }
                    let bound = SimTime::from_ps(global)
                        .checked_add(lookahead)
                        .expect("window bound fits SimTime");

                    // Phase C: run the window, then post outgoing mail to
                    // each destination worker's box.
                    let t0 = clock.stamp();
                    for (idx, part, outbox) in &mut local {
                        if part.next_event_time().is_some_and(|t| t < bound) {
                            occupancy[*idx].fetch_add(1, Ordering::Relaxed);
                        }
                        if let Err(e) = part.run_window(bound, outbox) {
                            let mut slot =
                                fail.lock().expect("partition failure lock poisoned");
                            slot.get_or_insert(PartitionError::Partition(e));
                            break;
                        }
                    }
                    busy[w].fetch_add(clock.stamp().saturating_sub(t0), Ordering::Relaxed);
                    for (_, _, outbox) in &mut local {
                        if let Err(e) = validate(&outbox.msgs, bound, n) {
                            let mut slot =
                                fail.lock().expect("partition failure lock poisoned");
                            slot.get_or_insert(e);
                            outbox.msgs.clear();
                            continue;
                        }
                        messages.fetch_add(outbox.msgs.len() as u64, Ordering::Relaxed);
                        for env in outbox.msgs.drain(..) {
                            let dw = env.dest % workers;
                            mail[dw]
                                .lock()
                                .expect("partition mailbox lock poisoned")
                                .push(env);
                        }
                    }
                    let b1 = clock.stamp();
                    barrier.wait();
                    stall[w].fetch_add(clock.stamp().saturating_sub(b1), Ordering::Relaxed);

                    // Phase D: drain own mail in the canonical order and
                    // deliver. (dest, at, src, seq) is a total order, so
                    // the arrival interleaving at the mailbox is erased.
                    incoming.clear();
                    incoming.append(
                        &mut mail[w].lock().expect("partition mailbox lock poisoned"),
                    );
                    incoming.sort_unstable_by_key(Envelope::key);
                    for env in incoming.drain(..) {
                        let slot_idx = env.dest / workers;
                        let (idx, part, _) = &mut local[slot_idx];
                        debug_assert_eq!(*idx, env.dest);
                        if let Err(e) = part.deliver(env.at, env.msg) {
                            let mut slot =
                                fail.lock().expect("partition failure lock poisoned");
                            slot.get_or_insert(PartitionError::Partition(e));
                        }
                    }
                    let b2 = clock.stamp();
                    barrier.wait();
                    stall[w].fetch_add(clock.stamp().saturating_sub(b2), Ordering::Relaxed);
                }
            });
        }
    });

    if let Some(e) = fail
        .lock()
        .expect("partition failure lock poisoned")
        .take()
    {
        return Err(e);
    }
    Ok(RunStats {
        windows: windows.load(Ordering::Relaxed),
        messages: messages.load(Ordering::Relaxed),
        busy: busy.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        barrier_stall: stall.iter().map(|s| s.load(Ordering::Relaxed)).collect(),
        occupancy: occupancy.iter().map(|o| o.load(Ordering::Relaxed)).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;

    /// A toy partition: a queue of u64 markers; each processed marker
    /// optionally forwards a successor to the next partition after
    /// `hop` (>= the run's lookahead).
    struct Node {
        id: usize,
        ring: usize,
        hop: SimTime,
        budget: u64,
        queue: EventQueue<u64>,
        log: Vec<(SimTime, u64)>,
    }

    impl Node {
        fn new(id: usize, ring: usize, hop: SimTime, seed_events: u64, budget: u64) -> Self {
            let mut queue = EventQueue::new();
            for i in 0..seed_events {
                queue.schedule(SimTime::from_ns(1 + i), id as u64 * 1000 + i);
            }
            Node {
                id,
                ring,
                hop,
                budget,
                queue,
                log: Vec::new(),
            }
        }
    }

    impl Partition for Node {
        type Msg = u64;
        type Error = std::convert::Infallible;

        fn next_event_time(&self) -> Option<SimTime> {
            self.queue.peek_time()
        }

        fn run_window(
            &mut self,
            bound: SimTime,
            outbox: &mut Outbox<u64>,
        ) -> Result<(), Self::Error> {
            while self.queue.peek_time().is_some_and(|t| t < bound) {
                let (t, marker) = self.queue.pop().expect("peeked event exists");
                self.log.push((t, marker));
                if self.budget > 0 {
                    self.budget -= 1;
                    outbox.send((self.id + 1) % self.ring, t + self.hop, marker + 1);
                }
            }
            Ok(())
        }

        fn deliver(&mut self, at: SimTime, msg: u64) -> Result<(), Self::Error> {
            self.queue.schedule(at, msg);
            Ok(())
        }
    }

    fn ring(n: usize, hop: SimTime, budget: u64) -> Vec<Node> {
        (0..n).map(|i| Node::new(i, n, hop, 4, budget)).collect()
    }

    fn digest(parts: &[Node]) -> Vec<(usize, Vec<(SimTime, u64)>, u64)> {
        parts
            .iter()
            .map(|p| (p.id, p.log.clone(), p.queue.popped()))
            .collect()
    }

    #[test]
    fn one_vs_n_workers_is_bit_identical() {
        let hop = SimTime::from_ns(50);
        let mut reference = ring(5, hop, 20);
        let ref_stats =
            run_conservative(&mut reference, hop, 1).expect("sequential run succeeds");
        for workers in [2, 3, 5, 8] {
            let mut parts = ring(5, hop, 20);
            let stats = run_conservative(&mut parts, hop, workers)
                .expect("parallel run succeeds");
            assert_eq!(digest(&parts), digest(&reference), "workers={workers}");
            assert_eq!(stats.windows, ref_stats.windows, "workers={workers}");
            assert_eq!(stats.messages, ref_stats.messages, "workers={workers}");
            assert_eq!(stats.occupancy, ref_stats.occupancy, "workers={workers}");
        }
    }

    #[test]
    fn occupancy_counts_admitted_windows_and_null_clock_stalls_are_zero() {
        let hop = SimTime::from_ns(50);
        let mut parts = ring(4, hop, 10);
        let stats = run_conservative(&mut parts, hop, 2).expect("run succeeds");
        assert_eq!(stats.occupancy.len(), 4);
        // Every node seeds events, so each occupies at least one window,
        // and no count can exceed the number of windows run.
        for (i, &o) in stats.occupancy.iter().enumerate() {
            assert!(o >= 1, "partition {i} never occupied a window");
            assert!(o <= stats.windows);
            assert!(stats.occupancy_frac(i) > 0.0);
        }
        // NullClock: busy and barrier-stall sums must all read zero.
        assert!(stats.busy.iter().all(|&b| b == 0));
        assert!(stats.barrier_stall.iter().all(|&s| s == 0));
        assert_eq!(stats.max_barrier_stall(), 0);
    }

    #[test]
    fn lookahead_violations_are_typed_errors() {
        // A hop shorter than the lookahead undercuts the window bound.
        let mut parts = ring(3, SimTime::from_ns(10), 20);
        let err = run_conservative(&mut parts, SimTime::from_ns(40), 2).unwrap_err();
        assert!(
            matches!(err, PartitionError::LookaheadViolation { at, bound, .. } if at < bound),
            "{err:?}"
        );
    }

    #[test]
    fn zero_lookahead_is_refused() {
        let mut parts = ring(2, SimTime::from_ns(10), 1);
        assert_eq!(
            run_conservative(&mut parts, SimTime::ZERO, 2).unwrap_err(),
            PartitionError::ZeroLookahead,
        );
    }

    #[test]
    fn empty_partition_set_is_refused() {
        let mut parts: Vec<Node> = Vec::new();
        assert_eq!(
            run_conservative(&mut parts, SimTime::from_ns(1), 2).unwrap_err(),
            PartitionError::NoPartitions,
        );
    }

    #[test]
    fn window_bound_is_min_plus_lookahead() {
        let times = [
            Some(SimTime::from_ns(30)),
            None,
            Some(SimTime::from_ns(12)),
        ];
        assert_eq!(
            window_bound(times, SimTime::from_ns(5)),
            Some(SimTime::from_ns(17))
        );
        assert_eq!(window_bound([None, None], SimTime::from_ns(5)), None);
    }

    #[test]
    fn messages_deliver_in_canonical_order_at_ties() {
        // Two sources target partition 0 at the same instant; the
        // (at, src, seq) tie-break must hold for any worker count.
        struct Burst {
            id: usize,
            queue: EventQueue<u64>,
            seen: Vec<u64>,
        }
        impl Partition for Burst {
            type Msg = u64;
            type Error = std::convert::Infallible;
            fn next_event_time(&self) -> Option<SimTime> {
                self.queue.peek_time()
            }
            fn run_window(
                &mut self,
                bound: SimTime,
                outbox: &mut Outbox<u64>,
            ) -> Result<(), Self::Error> {
                while self.queue.peek_time().is_some_and(|t| t < bound) {
                    let (t, v) = self.queue.pop().expect("peeked event exists");
                    self.seen.push(v);
                    if self.id != 0 {
                        // Both senders aim at the same instant on node 0.
                        outbox.send(0, t + SimTime::from_ns(100), self.id as u64 * 10);
                        outbox.send(0, t + SimTime::from_ns(100), self.id as u64 * 10 + 1);
                    }
                }
                Ok(())
            }
            fn deliver(&mut self, at: SimTime, msg: u64) -> Result<(), Self::Error> {
                self.queue.schedule(at, msg);
                Ok(())
            }
        }
        let make = || -> Vec<Burst> {
            (0..3)
                .map(|id| {
                    let mut queue = EventQueue::new();
                    if id != 0 {
                        queue.schedule(SimTime::from_ns(1), 0);
                    }
                    Burst {
                        id,
                        queue,
                        seen: Vec::new(),
                    }
                })
                .collect()
        };
        let mut reference = make();
        run_conservative(&mut reference, SimTime::from_ns(100), 1)
            .expect("sequential run succeeds");
        // FIFO at node 0 reflects (src, seq) order: 10, 11, 20, 21.
        assert_eq!(reference[0].seen, vec![10, 11, 20, 21]);
        for workers in [2, 3] {
            let mut parts = make();
            run_conservative(&mut parts, SimTime::from_ns(100), workers)
                .expect("parallel run succeeds");
            assert_eq!(parts[0].seen, reference[0].seen, "workers={workers}");
        }
    }
}
