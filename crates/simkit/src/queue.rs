//! Bounded FIFO queues with occupancy accounting.
//!
//! The LLC Rx ingress queues and the routing-layer arbitration points are
//! bounded; credit-based backpressure exists precisely to keep them from
//! overflowing. [`BoundedFifo`] counts rejects so tests can assert that a
//! correctly credited link never drops.

use std::collections::VecDeque;

/// A FIFO with a hard capacity.
///
/// # Example
///
/// ```
/// use simkit::queue::BoundedFifo;
///
/// let mut q = BoundedFifo::new(2);
/// assert!(q.push(1).is_ok());
/// assert!(q.push(2).is_ok());
/// assert!(q.push(3).is_err()); // full: rejected, value handed back
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.rejected(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BoundedFifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    rejected: u64,
    high_water: usize,
    total_pushed: u64,
}

impl<T> BoundedFifo<T> {
    /// Creates an empty queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedFifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
            rejected: 0,
            high_water: 0,
            total_pushed: 0,
        }
    }

    /// Attempts to enqueue; on a full queue the value is returned in `Err`.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the queue is at capacity.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.rejected += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.total_pushed += 1;
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest item.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Remaining free slots.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pushes rejected because the queue was full.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Highest occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total successful pushes.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Iterates over queued items front-to-back.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedFifo::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        let out: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn capacity_enforced_and_counted() {
        let mut q = BoundedFifo::new(3);
        for i in 0..3 {
            q.push(i).unwrap();
        }
        assert!(q.is_full());
        assert_eq!(q.free_slots(), 0);
        assert_eq!(q.push(99), Err(99));
        assert_eq!(q.push(100), Err(100));
        assert_eq!(q.rejected(), 2);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut q = BoundedFifo::new(10);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.pop();
        q.pop();
        q.push(3).unwrap();
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.total_pushed(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BoundedFifo::<u8>::new(0);
    }
}
