//! Bounded FIFO queues with occupancy accounting.
//!
//! The LLC Rx ingress queues and the routing-layer arbitration points are
//! bounded; credit-based backpressure exists precisely to keep them from
//! overflowing. [`BoundedFifo`] counts rejects so tests can assert that a
//! correctly credited link never drops.

use std::collections::VecDeque;

/// A FIFO with a hard capacity.
///
/// # Example
///
/// ```
/// use simkit::queue::BoundedFifo;
///
/// let mut q = BoundedFifo::new(2);
/// assert!(q.push(1).is_ok());
/// assert!(q.push(2).is_ok());
/// assert!(q.push(3).is_err()); // full: rejected, value handed back
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.rejected(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BoundedFifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    stats: FifoStats,
}

/// Occupancy bookkeeping, split out of the push fast path: `push`
/// inlines to a bounds check plus a `push_back`, and the counter
/// updates sit in cold/batched paths where the optimizer keeps them
/// off the hot loop.
#[derive(Debug, Clone, Copy, Default)]
struct FifoStats {
    rejected: u64,
    high_water: usize,
    total_pushed: u64,
}

impl FifoStats {
    #[inline]
    fn record_push(&mut self, occupancy: usize) {
        self.total_pushed += 1;
        if occupancy > self.high_water {
            self.high_water = occupancy;
        }
    }
}

impl<T> BoundedFifo<T> {
    /// Creates an empty queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedFifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
            stats: FifoStats::default(),
        }
    }

    /// Attempts to enqueue; on a full queue the value is returned in `Err`.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the queue is at capacity.
    #[inline]
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            return Err(self.reject(item));
        }
        self.items.push_back(item);
        self.stats.record_push(self.items.len());
        Ok(())
    }

    /// The reject path is cold by construction: credit-based
    /// backpressure exists precisely so this never runs on a healthy
    /// link.
    #[cold]
    fn reject(&mut self, item: T) -> T {
        self.stats.rejected += 1;
        item
    }

    /// Moves items from the front of `pending` into the queue until the
    /// queue is full or `pending` is empty. Returns how many moved.
    ///
    /// This is the batched ingress path (used by the LLC Rx): one
    /// capacity computation and one bookkeeping update cover the whole
    /// burst, instead of per-item checks — and unlike a `push` loop it
    /// never counts would-be overflow as rejects, so callers can leave
    /// the remainder in `pending` for the next cycle.
    pub fn extend_while_free(&mut self, pending: &mut Vec<T>) -> usize {
        let take = self.free_slots().min(pending.len());
        if take == 0 {
            return 0;
        }
        self.items.extend(pending.drain(..take));
        self.stats.total_pushed += take as u64;
        if self.items.len() > self.stats.high_water {
            self.stats.high_water = self.items.len();
        }
        take
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest item.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Remaining free slots.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pushes rejected because the queue was full.
    pub fn rejected(&self) -> u64 {
        self.stats.rejected
    }

    /// Highest occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.stats.high_water
    }

    /// Total successful pushes.
    pub fn total_pushed(&self) -> u64 {
        self.stats.total_pushed
    }

    /// Iterates over queued items front-to-back.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedFifo::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        let out: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn capacity_enforced_and_counted() {
        let mut q = BoundedFifo::new(3);
        for i in 0..3 {
            q.push(i).unwrap();
        }
        assert!(q.is_full());
        assert_eq!(q.free_slots(), 0);
        assert_eq!(q.push(99), Err(99));
        assert_eq!(q.push(100), Err(100));
        assert_eq!(q.rejected(), 2);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut q = BoundedFifo::new(10);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.pop();
        q.pop();
        q.push(3).unwrap();
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.total_pushed(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BoundedFifo::<u8>::new(0);
    }

    #[test]
    fn extend_while_free_takes_only_what_fits() {
        let mut q = BoundedFifo::new(4);
        q.push(0).unwrap();
        let mut pending = vec![1, 2, 3, 4, 5];
        assert_eq!(q.extend_while_free(&mut pending), 3);
        assert_eq!(pending, vec![4, 5]); // remainder stays, in order
        assert!(q.is_full());
        assert_eq!(q.rejected(), 0); // deferral is not a drop
        assert_eq!(q.total_pushed(), 4);
        assert_eq!(q.high_water(), 4);
        let out: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(q.extend_while_free(&mut pending), 2);
        assert_eq!(q.len(), 2);
        assert!(pending.is_empty());
    }

    #[test]
    fn extend_into_full_queue_is_a_no_op() {
        let mut q = BoundedFifo::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        let mut pending = vec![3];
        assert_eq!(q.extend_while_free(&mut pending), 0);
        assert_eq!(pending, vec![3]);
        assert_eq!(q.rejected(), 0);
    }
}
