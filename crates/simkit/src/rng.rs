//! Deterministic random sources and the samplers the paper's workloads use.
//!
//! Everything is seeded explicitly so that every experiment in the
//! repository is reproducible bit-for-bit. The samplers cover the
//! distributions cited by the evaluation: zipf-like key popularity
//! (Breslau et al., used for Memcached and YCSB), exponential
//! inter-arrivals, and log-normal value sizes from the Facebook "ETC"
//! workload characterisation (Atikoglu et al.).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic, explicitly seeded random source.
///
/// # Example
///
/// ```
/// use simkit::rng::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated component its own stream without cross-coupling.
    pub fn fork(&mut self, salt: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Derives the `stream`-th independent generator from a master seed
    /// **without** consuming state from any live generator.
    ///
    /// This is the parallel-sweep splitting function: every sweep point
    /// gets `split_stream(master_seed, point_index)`, so the stream a
    /// point sees depends only on `(master_seed, point_index)` — never
    /// on which worker ran it or in what order. That is what makes a
    /// 1-worker and an N-worker sweep bit-identical.
    ///
    /// The mix is a double SplitMix64-style finalizer over the seed and
    /// stream id, so adjacent stream indices land far apart in seed
    /// space.
    ///
    /// # Example
    ///
    /// ```
    /// use simkit::rng::DetRng;
    ///
    /// let mut a = DetRng::split_stream(42, 3);
    /// let mut b = DetRng::split_stream(42, 3);
    /// let mut c = DetRng::split_stream(42, 4);
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// assert_ne!(a.next_u64(), c.next_u64());
    /// ```
    pub fn split_stream(master_seed: u64, stream: u64) -> DetRng {
        DetRng::new(splitmix64(
            master_seed ^ splitmix64(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        ))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform usize in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from empty collection");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.f64(); // avoid ln(0)
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mu + sigma * z
    }

    /// Log-normal: `exp(N(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Picks an index according to a weight vector.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weights must be non-empty with positive sum"
        );
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

/// SplitMix64 finalizer: a full-avalanche bijection on u64, the
/// standard way to spread structured seeds (small integers, sequential
/// stream ids) across the whole seed space.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A zipf-like sampler over keys `0..n` with exponent `theta`.
///
/// Uses the truncated continuous power-law inverse-CDF approximation:
/// exact enough to reproduce the cache-hit ratios the paper reports
/// (80–82% for the Memcached setup) while sampling in O(1) for key
/// spaces of hundreds of millions of items.
///
/// # Example
///
/// ```
/// use simkit::rng::{DetRng, ZipfSampler};
///
/// let mut rng = DetRng::new(7);
/// let zipf = ZipfSampler::new(1_000_000, 1.0);
/// let k = zipf.sample(&mut rng);
/// assert!(k < 1_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `0..n` with exponent `theta > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta <= 0`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf needs a non-empty key space");
        assert!(theta > 0.0, "zipf exponent must be positive");
        ZipfSampler { n, theta }
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> u64 {
        self.n
    }

    /// The skew exponent.
    pub fn exponent(&self) -> f64 {
        self.theta
    }

    /// Draws a key in `[0, n)`; key 0 is the most popular.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let u = rng.f64();
        let b = self.n as f64;
        let x = if (self.theta - 1.0).abs() < 1e-9 {
            // s == 1: inverse of H(x) = ln(x) over [1, b].
            b.powf(u)
        } else {
            // s != 1: inverse of H(x) = (x^{1-s} - 1)/(1-s) over [1, b].
            let one_minus = 1.0 - self.theta;
            (u * (b.powf(one_minus) - 1.0) + 1.0).powf(1.0 / one_minus)
        };
        let k = x.floor() as u64;
        k.clamp(1, self.n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_streams_differ() {
        let mut root = DetRng::new(5);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn split_stream_is_order_free() {
        // Streams depend only on (seed, index): deriving them in any
        // order, from any thread, yields identical generators.
        let forward: Vec<u64> = (0..8)
            .map(|i| DetRng::split_stream(99, i).next_u64())
            .collect();
        let backward: Vec<u64> = (0..8)
            .rev()
            .map(|i| DetRng::split_stream(99, i).next_u64())
            .collect();
        let reversed: Vec<u64> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed);
        // And adjacent streams are distinct.
        for w in forward.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn split_stream_differs_from_master() {
        let mut master = DetRng::new(42);
        let mut s0 = DetRng::split_stream(42, 0);
        assert_ne!(master.next_u64(), s0.next_u64());
    }

    #[test]
    fn range_bounds() {
        let mut rng = DetRng::new(2);
        for _ in 0..1000 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn exp_mean_is_close() {
        let mut rng = DetRng::new(3);
        let mean = 50.0;
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exp(mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() < mean * 0.05, "observed {observed}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = DetRng::new(4);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
        assert!((var - 4.0).abs() < 0.3);
    }

    #[test]
    fn weighted_respects_weights() {
        let mut rng = DetRng::new(6);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.weighted(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let frac2 = counts[2] as f64 / 30_000.0;
        assert!((frac2 - 0.7).abs() < 0.03);
    }

    #[test]
    fn zipf_is_skewed_and_bounded() {
        let mut rng = DetRng::new(8);
        let zipf = ZipfSampler::new(10_000, 1.0);
        let mut head = 0u64;
        let trials = 50_000;
        for _ in 0..trials {
            let k = zipf.sample(&mut rng);
            assert!(k < 10_000);
            if k < 100 {
                head += 1;
            }
        }
        // With theta=1 and n=1e4, the top 1% of keys should draw roughly
        // half the probability mass (ln(100)/ln(10000) = 0.5).
        let frac = head as f64 / trials as f64;
        assert!(frac > 0.40 && frac < 0.60, "head fraction {frac}");
    }

    #[test]
    fn zipf_head_key_share_matches_the_closed_form() {
        // The sampler inverts the truncated continuous power law, so
        // the hottest key's share has a closed form: with theta=1 over
        // [1, n], P(key 0) = P(x < 2) = ln(2)/ln(n). The fleet
        // scenarios lean on this share to place hotspots; pin it to
        // within a percentage point so a regression in the inverse-CDF
        // can't silently flatten (or sharpen) every hotspot.
        let mut rng = DetRng::new(11);
        let n = 10_000u64;
        let zipf = ZipfSampler::new(n, 1.0);
        let trials = 200_000u64;
        let mut head = 0u64;
        for _ in 0..trials {
            if zipf.sample(&mut rng) == 0 {
                head += 1;
            }
        }
        let expected = 2f64.ln() / (n as f64).ln(); // ~0.0753
        let observed = head as f64 / trials as f64;
        assert!(
            (observed - expected).abs() < 0.01,
            "head key share {observed:.4}, closed form {expected:.4}"
        );
    }

    #[test]
    fn zipf_streams_are_bit_identical_across_sweep_workers() {
        // Fleet scenarios deal zipf keys to clients through the sweep
        // harness; the deal must not depend on how many workers ran
        // the sweep. Each point draws its keys from the stream split
        // by (seed, point index), so 1 worker and 4 workers must
        // produce byte-for-byte the same key sequences.
        let sample_point = |_i: usize, client: u64, mut rng: DetRng| -> Vec<u64> {
            let zipf = ZipfSampler::new(1 << 20, 0.99);
            (0..512).map(|_| zipf.sample(&mut rng) ^ client).collect()
        };
        let points: Vec<u64> = (0..16).collect();
        let one = crate::sweep::sweep_with_workers(1234, points.clone(), 1, sample_point);
        let four = crate::sweep::sweep_with_workers(1234, points, 4, sample_point);
        assert_eq!(one, four, "zipf sample streams diverged across worker counts");
    }

    #[test]
    fn zipf_non_unit_exponent() {
        let mut rng = DetRng::new(9);
        let zipf = ZipfSampler::new(1000, 0.99);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < 1000);
        }
        let steep = ZipfSampler::new(1000, 2.0);
        let mut zero = 0;
        for _ in 0..1000 {
            if steep.sample(&mut rng) == 0 {
                zero += 1;
            }
        }
        // theta=2 concentrates roughly half the mass on the first key
        // (continuous approximation: P(x < 2) = (1 - 1/2)/(1 - 1/n)).
        assert!(zero > 400, "zero draws: {zero}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(10);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        DetRng::new(0).range(5, 5);
    }
}
