//! Statistics collection: log-bucketed histograms, CDFs and online moments.
//!
//! The benchmark harnesses use [`Histogram`] for request latencies (paper
//! Fig. 8 is a latency CDF) and [`Welford`] for cheap mean/variance of
//! throughput series.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of linear sub-buckets per power-of-two bucket. 32 sub-buckets
/// bound the relative quantile error to ~3%.
const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = 5; // log2(SUB_BUCKETS)

/// A log-bucketed histogram of `u64` values (HdrHistogram-style).
///
/// Records values with bounded relative error and answers quantile and
/// CDF queries. Suited to latencies spanning nanoseconds to seconds.
///
/// # Example
///
/// ```
/// use simkit::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.quantile(0.5);
/// assert!((450..=550).contains(&p50), "median {p50}");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // 64 exponent buckets x SUB_BUCKETS linear sub-buckets.
        Histogram {
            counts: vec![0; 64 * SUB_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros();
        let shift = exp - SUB_BITS;
        let sub = (value >> shift) as usize & (SUB_BUCKETS - 1);
        ((exp - SUB_BITS + 1) as usize) * SUB_BUCKETS + sub
    }

    fn value_of(index: usize) -> u64 {
        let bucket = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        if bucket == 0 {
            return sub;
        }
        // `bucket` ≤ 63 (64 exponent buckets), so the conversion holds.
        let shift = u32::try_from(bucket - 1).unwrap_or(u32::MAX);
        // Upper edge of the sub-bucket (conservative for quantiles).
        ((SUB_BUCKETS as u64 + sub + 1) << shift) - 1
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical observations.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::index_of(value);
        self.counts[idx] += n;
        self.total += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether the histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]` (upper bucket edge, so the answer
    /// is ≥ the true quantile by at most ~3%).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return 0;
        }
        let rank = crate::units::f64_to_u64_saturating((q * self.total as f64).ceil())
            .clamp(1, self.total);
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::value_of(i).min(self.max);
            }
        }
        self.max
    }

    /// Extracts the empirical CDF as `(value, cumulative_fraction)` points,
    /// one per non-empty bucket. This is what the Fig. 8 harness plots.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        if self.total == 0 {
            return out;
        }
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            seen += c;
            out.push((
                Self::value_of(i).min(self.max),
                seen as f64 / self.total as f64,
            ));
        }
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (i, c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Bucket-wise difference `self − earlier` (saturating), for diffing
    /// two snapshots of the same cumulative histogram. `earlier` must be a
    /// prefix of `self`'s recordings for the result to be meaningful.
    ///
    /// `min`/`max` of the difference are reconstructed from the surviving
    /// bucket edges, so they carry the same ~3% relative error as
    /// quantiles rather than being exact.
    pub fn subtract(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (i, (a, b)) in self.counts.iter().zip(&earlier.counts).enumerate() {
            let c = a.saturating_sub(*b);
            if c == 0 {
                continue;
            }
            out.counts[i] = c;
            out.total += c;
            let edge = Self::value_of(i).min(self.max);
            out.min = out.min.min(edge);
            out.max = out.max.max(edge);
        }
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p90={} p99={} max={}",
            self.total,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.9),
            self.quantile(0.99),
            self.max
        )
    }
}

/// Online mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use simkit::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.add(x);
/// }
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than one observation).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation (0 with fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS as u64 - 1);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn quantile_bounded_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for &(q, expect) in &[(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.05, "q={q} got={got} expect={expect} rel={rel}");
        }
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let mut h = Histogram::new();
        for v in [10u64, 100, 1_000, 10_000, 100_000] {
            h.record_n(v, 20);
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        let mut prev = 0.0;
        for &(_, f) in &cdf {
            assert!(f >= prev);
            prev = f;
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(100, 5);
        b.record_n(1_000_000, 7);
        a.merge(&b);
        assert_eq!(a.count(), 12);
        assert_eq!(a.min(), 100);
        assert!(a.max() >= 1_000_000);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record_n(42, 9);
        let before = (a.count(), a.min(), a.max(), a.mean());
        a.merge(&Histogram::new());
        assert_eq!((a.count(), a.min(), a.max(), a.mean()), before);

        let mut empty = Histogram::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 9);
        assert_eq!(empty.min(), 42);
    }

    #[test]
    fn merged_quantile_extremes() {
        // p0 / p100 after merging disjoint ranges land on the global
        // extremes (within bucket resolution), not on either input's.
        let mut low = Histogram::new();
        let mut high = Histogram::new();
        for v in 1..=100u64 {
            low.record(v);
        }
        for v in 900_000..=1_000_000u64 {
            high.record(v);
        }
        low.merge(&high);
        assert_eq!(low.quantile(0.0), 1);
        let p100 = low.quantile(1.0);
        assert!(p100 >= 1_000_000 - 1_000_000 / 20, "p100 {p100}");
        assert!(p100 <= low.max());
    }

    #[test]
    fn empty_histogram_quantile_edges() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_value_quantiles_collapse() {
        let mut h = Histogram::new();
        h.record(17);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 17, "q={q}");
        }
    }

    #[test]
    fn subtract_recovers_interval_recordings() {
        let mut earlier = Histogram::new();
        earlier.record_n(10, 3);
        let mut later = earlier.clone();
        later.record_n(10, 2);
        later.record_n(5_000, 4);
        let d = later.subtract(&earlier);
        assert_eq!(d.count(), 6);
        assert_eq!(d.min(), 10);
        assert!((d.mean() - (2.0 * 10.0 + 4.0 * 5_000.0) / 6.0).abs() < 1e-9);
        // Subtracting everything yields an empty histogram.
        let none = later.subtract(&later);
        assert!(none.is_empty());
        assert_eq!(none.quantile(1.0), 0);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record_n(10, 3);
        h.record_n(40, 1);
        assert!((h.mean() - 17.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_extremes() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(500_000);
        assert_eq!(h.quantile(0.0), 5);
        assert!(h.quantile(1.0) >= 500_000 - 500_000 / 20);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn bad_quantile_panics() {
        Histogram::new().quantile(1.5);
    }

    #[test]
    fn welford_counts() {
        let mut w = Welford::new();
        assert_eq!(w.count(), 0);
        w.add(1.0);
        assert_eq!(w.count(), 1);
        assert_eq!(w.stddev(), 0.0);
    }
}
