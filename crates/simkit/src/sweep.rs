//! Parallel sweep harness: fan independent simulation points across
//! worker threads without giving up bit-for-bit determinism.
//!
//! Every figure in the paper's evaluation is a sweep — a grid of
//! configuration × thread-count × partition points, each an independent
//! simulation. The points share nothing at runtime, so they can run on
//! as many cores as the host offers. Two rules keep the output
//! identical regardless of parallelism:
//!
//! 1. **Seed by point, not by worker.** Point `i` always draws its
//!    randomness from [`DetRng::split_stream`]`(master_seed, i)`, so the
//!    stream it sees is a pure function of the master seed and its grid
//!    position — never of scheduling.
//! 2. **Place results by point index.** Workers claim points through an
//!    atomic cursor but write results into the point's own slot, so the
//!    returned `Vec` is in grid order no matter which worker finished
//!    first.
//!
//! Worker count comes from the `THREADS` environment variable when set,
//! else from [`std::thread::available_parallelism`]. With one worker
//! the sweep runs inline on the calling thread — no pool, no overhead.
//!
//! # Example
//!
//! ```
//! use simkit::sweep;
//!
//! let grid: Vec<u64> = (1..=8).collect();
//! let out = sweep::sweep(42, grid, |_idx, threads, mut rng| {
//!     // Each point simulates independently on its own stream.
//!     threads * 100 + rng.range(0, 10)
//! });
//! assert_eq!(out.len(), 8);
//! // Identical regardless of worker count:
//! let again = sweep::sweep_with_workers(42, (1..=8).collect(), 1, |_i, t, mut rng| {
//!     t * 100 + rng.range(0, 10)
//! });
//! assert_eq!(out, again);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::rng::DetRng;

/// Number of sweep workers to use: the `THREADS` environment variable
/// when set to a positive integer, otherwise the host's available
/// parallelism (1 if that cannot be determined).
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs every point of `points` through `run`, fanning across
/// [`worker_count`] workers. Results come back in grid order.
///
/// `run` receives the point's grid index, the point itself, and a
/// dedicated RNG stream split deterministically from `master_seed`; see
/// the module docs for why this makes worker count invisible in the
/// output.
pub fn sweep<C, R, F>(master_seed: u64, points: Vec<C>, run: F) -> Vec<R>
where
    C: Send,
    R: Send,
    F: Fn(usize, C, DetRng) -> R + Sync,
{
    sweep_with_workers(master_seed, points, worker_count(), run)
}

/// [`sweep`] with an explicit worker count (the determinism tests pin 1
/// vs N; benches pin 1 to measure single-core engine throughput).
pub fn sweep_with_workers<C, R, F>(master_seed: u64, points: Vec<C>, workers: usize, run: F) -> Vec<R>
where
    C: Send,
    R: Send,
    F: Fn(usize, C, DetRng) -> R + Sync,
{
    let n = points.len();
    if workers <= 1 || n <= 1 {
        // Inline on the calling thread: the common case on small hosts
        // and the reference execution for determinism tests.
        return points
            .into_iter()
            .enumerate()
            .map(|(i, p)| run(i, p, DetRng::split_stream(master_seed, i as u64)))
            .collect();
    }

    // Each point moves through exactly one Mutex lock on claim and one
    // on completion — negligible next to a simulation's runtime.
    let work: Vec<Mutex<Option<C>>> = points.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let done: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let run = &run;
    let work = &work;
    let done = &done;
    let cursor = &cursor;

    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let point = work[i]
                    .lock()
                    .expect("sweep point lock poisoned")
                    .take()
                    .expect("sweep point claimed twice");
                let result = run(i, point, DetRng::split_stream(master_seed, i as u64));
                *done[i].lock().expect("sweep result lock poisoned") = Some(result);
            });
        }
    });

    done.iter()
        .map(|slot| {
            slot.lock()
                .expect("sweep result lock poisoned")
                .take()
                .expect("sweep worker panicked before storing its result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_grid_order() {
        let points: Vec<u64> = (0..32).collect();
        let out = sweep_with_workers(7, points, 4, |i, p, _rng| {
            assert_eq!(i as u64, p);
            p * 2
        });
        assert_eq!(out, (0..32).map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_is_invisible_in_output() {
        let run = |_i: usize, p: u64, mut rng: DetRng| -> Vec<u64> {
            (0..p % 5 + 1).map(|_| rng.next_u64()).collect()
        };
        let serial = sweep_with_workers(1234, (0..20).collect(), 1, run);
        for workers in [2, 3, 8] {
            let parallel = sweep_with_workers(1234, (0..20).collect(), workers, run);
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn more_workers_than_points_is_fine() {
        let out = sweep_with_workers(1, vec![10u64, 20], 16, |_i, p, _rng| p + 1);
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn empty_sweep_returns_empty() {
        let out = sweep_with_workers(1, Vec::<u64>::new(), 4, |_i, p, _rng| p);
        assert!(out.is_empty());
    }

    #[test]
    fn streams_match_direct_split() {
        // The rng handed to point i must be exactly split_stream(seed, i).
        let out = sweep_with_workers(55, (0..4u64).collect(), 2, |i, _p, mut rng| {
            (i, rng.next_u64())
        });
        for (i, v) in out {
            let mut expect = DetRng::split_stream(55, i as u64);
            assert_eq!(v, expect.next_u64());
        }
    }
}
