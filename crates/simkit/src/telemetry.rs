//! Workspace telemetry: a registry of counters, gauges and
//! [`Histogram`]-backed timers keyed by hierarchical dotted paths.
//!
//! Every simulator layer registers its metrics here (e.g.
//! `fabric.llc_tx.credit_stalls`, `fabric.link0.fwd.frames_sent`) and the
//! harnesses read them back as [`Snapshot`]s — an ordered map that can be
//! diffed against an earlier snapshot and exported through the vendored
//! `serde` [`Value`](serde::Value) tree / JSON.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** The registry is clocked by [`SimTime`], never wall
//!    clock, and recording a metric never schedules events or perturbs
//!    simulation state. Enabling telemetry must not change a run's
//!    trajectory — only observe it.
//! 2. **Near-zero cost when disabled.** Call sites hold pre-registered
//!    integer handles ([`CounterId`], [`GaugeId`], [`TimerId`]); every
//!    mutator is a single `enabled` branch followed by an indexed
//!    increment. When disabled the branch is the whole cost.
//! 3. **Stable export.** Paths sort lexicographically in snapshots so
//!    diffs and JSON output are reproducible across runs.
//!
//! # Example
//!
//! ```
//! use simkit::telemetry::{Metric, Registry, TelemetryError};
//! use simkit::time::SimTime;
//!
//! # fn main() -> Result<(), TelemetryError> {
//! let mut reg = Registry::new(true);
//! let sent = reg.counter("fabric.link0.frames_sent")?;
//! let rtt = reg.timer("fabric.path0.rtt_ns")?;
//! reg.inc(sent);
//! reg.record_ns(rtt, 950);
//! let snap = reg.snapshot(SimTime::from_ns(1_000));
//! assert_eq!(snap.counter("fabric.link0.frames_sent"), Some(1));
//! match snap.get("fabric.path0.rtt_ns") {
//!     Some(Metric::Timer(h)) => assert_eq!(h.count(), 1),
//!     other => panic!("expected timer, got {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::fmt;

use serde::{Serialize, Value};

use crate::stats::Histogram;
use crate::time::SimTime;

/// Handle to a monotonically increasing counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a gauge (a point-in-time level, set not accumulated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a [`Histogram`]-backed timer recording durations in
/// nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId(usize);

/// Which storage slot a registered path resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Counter(usize),
    Gauge(usize),
    Timer(usize),
}

impl Slot {
    fn kind(self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Timer(_) => "timer",
        }
    }
}

/// Typed registration failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryError {
    /// The path is already registered as a different metric kind.
    KindMismatch {
        /// The colliding path.
        path: String,
        /// What the path is already registered as.
        registered: &'static str,
        /// What the caller asked for.
        requested: &'static str,
    },
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::KindMismatch {
                path,
                registered,
                requested,
            } => write!(
                f,
                "telemetry path {path:?} already registered as {registered}, \
                 requested {requested}"
            ),
        }
    }
}

impl std::error::Error for TelemetryError {}

/// A metrics registry keyed by hierarchical dotted paths.
///
/// Registration is idempotent: registering the same path twice with the
/// same kind returns the same handle. Registering an existing path as a
/// *different* kind is refused with a typed
/// [`TelemetryError::KindMismatch`].
#[derive(Debug, Clone, Default)]
pub struct Registry {
    enabled: bool,
    index: BTreeMap<String, Slot>,
    counters: Vec<u64>,
    gauges: Vec<u64>,
    timers: Vec<Histogram>,
}

impl Registry {
    /// Creates a registry. Handles can be registered regardless of
    /// `enabled`; only recording is gated.
    pub fn new(enabled: bool) -> Self {
        Registry {
            enabled,
            ..Registry::default()
        }
    }

    /// Whether recording is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off. Already-accumulated values are kept.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    fn register(&mut self, path: &str, make: impl FnOnce(&mut Self) -> Slot) -> Slot {
        if let Some(&slot) = self.index.get(path) {
            return slot;
        }
        let slot = make(self);
        self.index.insert(path.to_string(), slot);
        slot
    }

    /// Registers (or looks up) a counter at `path`.
    ///
    /// # Errors
    ///
    /// Fails if `path` is already registered as a different kind.
    pub fn counter(&mut self, path: &str) -> Result<CounterId, TelemetryError> {
        let slot = self.register(path, |r| {
            r.counters.push(0);
            Slot::Counter(r.counters.len() - 1)
        });
        match slot {
            Slot::Counter(i) => Ok(CounterId(i)),
            other => Err(TelemetryError::KindMismatch {
                path: path.to_string(),
                registered: other.kind(),
                requested: "counter",
            }),
        }
    }

    /// Registers (or looks up) a gauge at `path`.
    ///
    /// # Errors
    ///
    /// Fails if `path` is already registered as a different kind.
    pub fn gauge(&mut self, path: &str) -> Result<GaugeId, TelemetryError> {
        let slot = self.register(path, |r| {
            r.gauges.push(0);
            Slot::Gauge(r.gauges.len() - 1)
        });
        match slot {
            Slot::Gauge(i) => Ok(GaugeId(i)),
            other => Err(TelemetryError::KindMismatch {
                path: path.to_string(),
                registered: other.kind(),
                requested: "gauge",
            }),
        }
    }

    /// Registers (or looks up) a timer at `path`. Timers record durations
    /// in nanoseconds into a [`Histogram`].
    ///
    /// # Errors
    ///
    /// Fails if `path` is already registered as a different kind.
    pub fn timer(&mut self, path: &str) -> Result<TimerId, TelemetryError> {
        let slot = self.register(path, |r| {
            r.timers.push(Histogram::new());
            Slot::Timer(r.timers.len() - 1)
        });
        match slot {
            Slot::Timer(i) => Ok(TimerId(i)),
            other => Err(TelemetryError::KindMismatch {
                path: path.to_string(),
                registered: other.kind(),
                requested: "timer",
            }),
        }
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Increments a counter by `n`.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        if self.enabled {
            self.counters[id.0] += n;
        }
    }

    /// Overwrites a counter with a cumulative `total` maintained
    /// elsewhere — for mirror counters refreshed at snapshot time from a
    /// component's own monotonic statistics.
    #[inline]
    pub fn set_counter(&mut self, id: CounterId, total: u64) {
        if self.enabled {
            self.counters[id.0] = total;
        }
    }

    /// Sets a gauge to `level`.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, level: u64) {
        if self.enabled {
            self.gauges[id.0] = level;
        }
    }

    /// Records a duration of `ns` nanoseconds into a timer.
    #[inline]
    pub fn record_ns(&mut self, id: TimerId, ns: u64) {
        if self.enabled {
            self.timers[id.0].record(ns);
        }
    }

    /// Records the span from `start` to `end` (saturating) into a timer.
    #[inline]
    pub fn record_span(&mut self, id: TimerId, start: SimTime, end: SimTime) {
        if self.enabled {
            self.timers[id.0].record(end.saturating_sub(start).as_ns());
        }
    }

    /// Current value of a counter (readable even when disabled).
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Current level of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> u64 {
        self.gauges[id.0]
    }

    /// The histogram behind a timer.
    pub fn timer_histogram(&self, id: TimerId) -> &Histogram {
        &self.timers[id.0]
    }

    /// Captures every registered metric at simulated time `at`.
    pub fn snapshot(&self, at: SimTime) -> Snapshot {
        let metrics = self
            .index
            .iter()
            .map(|(path, &slot)| {
                let metric = match slot {
                    Slot::Counter(i) => Metric::Counter(self.counters[i]),
                    Slot::Gauge(i) => Metric::Gauge(self.gauges[i]),
                    Slot::Timer(i) => Metric::Timer(self.timers[i].clone()),
                };
                (path.clone(), metric)
            })
            .collect();
        Snapshot { at, metrics }
    }
}

/// One exported metric value.
#[derive(Debug, Clone)]
pub enum Metric {
    /// Cumulative count.
    Counter(u64),
    /// Point-in-time level.
    Gauge(u64),
    /// Distribution of recorded durations (nanoseconds).
    Timer(Histogram),
}

/// A point-in-time export of a [`Registry`]: simulated timestamp plus an
/// ordered `path → metric` map.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Simulated time the snapshot was taken at.
    pub at: SimTime,
    /// All registered metrics, ordered by path.
    pub metrics: BTreeMap<String, Metric>,
}

impl Snapshot {
    /// Looks up a metric by path.
    pub fn get(&self, path: &str) -> Option<&Metric> {
        self.metrics.get(path)
    }

    /// The value of a counter at `path`, if one is registered there.
    pub fn counter(&self, path: &str) -> Option<u64> {
        match self.metrics.get(path) {
            Some(Metric::Counter(n)) => Some(*n),
            _ => None,
        }
    }

    /// The level of a gauge at `path`, if one is registered there.
    pub fn gauge(&self, path: &str) -> Option<u64> {
        match self.metrics.get(path) {
            Some(Metric::Gauge(n)) => Some(*n),
            _ => None,
        }
    }

    /// The histogram of a timer at `path`, if one is registered there.
    pub fn timer(&self, path: &str) -> Option<&Histogram> {
        match self.metrics.get(path) {
            Some(Metric::Timer(h)) => Some(h),
            _ => None,
        }
    }

    /// The change since `earlier`: counters subtract (saturating), timers
    /// subtract bucket-wise via [`Histogram::subtract`], gauges keep the
    /// newer level (a gauge is a reading, not an accumulation).
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let metrics = self
            .metrics
            .iter()
            .map(|(path, metric)| {
                let diffed = match (metric, earlier.metrics.get(path)) {
                    (Metric::Counter(now), Some(Metric::Counter(then))) => {
                        Metric::Counter(now.saturating_sub(*then))
                    }
                    (Metric::Timer(now), Some(Metric::Timer(then))) => {
                        Metric::Timer(now.subtract(then))
                    }
                    (other, _) => other.clone(),
                };
                (path.clone(), diffed)
            })
            .collect();
        Snapshot {
            at: self.at,
            metrics,
        }
    }

    /// Renders the snapshot as a JSON string (vendored `serde_json`).
    pub fn to_json(&self) -> String {
        // The vendored writer is infallible for a `Value` tree.
        serde_json::to_string(self).unwrap_or_default()
    }
}

impl Serialize for Metric {
    fn serialize(&self) -> Value {
        match self {
            Metric::Counter(n) => Value::Map(vec![
                ("type".into(), Value::Str("counter".into())),
                ("value".into(), Value::UInt(*n)),
            ]),
            Metric::Gauge(n) => Value::Map(vec![
                ("type".into(), Value::Str("gauge".into())),
                ("value".into(), Value::UInt(*n)),
            ]),
            Metric::Timer(h) => Value::Map(vec![
                ("type".into(), Value::Str("timer".into())),
                ("count".into(), Value::UInt(h.count())),
                ("mean_ns".into(), Value::Float(h.mean())),
                ("min_ns".into(), Value::UInt(h.min())),
                ("p50_ns".into(), Value::UInt(h.quantile(0.5))),
                ("p90_ns".into(), Value::UInt(h.quantile(0.9))),
                ("p99_ns".into(), Value::UInt(h.quantile(0.99))),
                ("max_ns".into(), Value::UInt(h.max())),
            ]),
        }
    }
}

impl Serialize for Snapshot {
    fn serialize(&self) -> Value {
        Value::Map(vec![
            ("at_ns".into(), Value::UInt(self.at.as_ns())),
            (
                "metrics".into(),
                Value::Map(
                    self.metrics
                        .iter()
                        .map(|(path, m)| (path.clone(), m.serialize()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "telemetry @ {} ns", self.at.as_ns())?;
        for (path, metric) in &self.metrics {
            match metric {
                Metric::Counter(n) => writeln!(f, "  {path} = {n}")?,
                Metric::Gauge(n) => writeln!(f, "  {path} ~ {n}")?,
                Metric::Timer(h) => writeln!(f, "  {path} : {h}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let mut reg = Registry::new(true);
        let a = reg.counter("a.b").unwrap();
        let b = reg.counter("a.b").unwrap();
        assert_eq!(a, b);
        assert_eq!(reg.snapshot(SimTime::ZERO).metrics.len(), 1);
    }

    #[test]
    fn kind_mismatch_is_a_typed_error() {
        let mut reg = Registry::new(true);
        reg.counter("a.b").unwrap();
        let err = reg.gauge("a.b").unwrap_err();
        assert_eq!(
            err,
            TelemetryError::KindMismatch {
                path: "a.b".to_string(),
                registered: "counter",
                requested: "gauge",
            }
        );
        assert!(err.to_string().contains("already registered as counter"));
        // The failed registration must not leave a stray slot behind.
        assert_eq!(reg.snapshot(SimTime::ZERO).metrics.len(), 1);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut reg = Registry::new(false);
        let c = reg.counter("c").unwrap();
        let g = reg.gauge("g").unwrap();
        let t = reg.timer("t").unwrap();
        reg.add(c, 5);
        reg.set_gauge(g, 7);
        reg.record_ns(t, 100);
        let snap = reg.snapshot(SimTime::ZERO);
        assert_eq!(snap.counter("c"), Some(0));
        assert_eq!(snap.gauge("g"), Some(0));
        assert!(snap.timer("t").is_some_and(Histogram::is_empty));
    }

    #[test]
    fn enable_disable_toggles_recording() {
        let mut reg = Registry::new(false);
        let c = reg.counter("c").unwrap();
        reg.inc(c);
        reg.set_enabled(true);
        reg.inc(c);
        reg.inc(c);
        reg.set_enabled(false);
        reg.inc(c);
        assert_eq!(reg.counter_value(c), 2);
    }

    #[test]
    fn record_span_uses_sim_time() {
        let mut reg = Registry::new(true);
        let t = reg.timer("rtt").unwrap();
        reg.record_span(t, SimTime::from_ns(100), SimTime::from_ns(1_050));
        let snap = reg.snapshot(SimTime::from_ns(2_000));
        let h = snap.timer("rtt").expect("timer registered");
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 950);
    }

    #[test]
    fn snapshot_diff_subtracts_counters_and_timers() {
        let mut reg = Registry::new(true);
        let c = reg.counter("frames").unwrap();
        let g = reg.gauge("occupancy").unwrap();
        let t = reg.timer("lat").unwrap();
        reg.add(c, 3);
        reg.set_gauge(g, 9);
        reg.record_ns(t, 100);
        let before = reg.snapshot(SimTime::from_ns(1));
        reg.add(c, 4);
        reg.set_gauge(g, 2);
        reg.record_ns(t, 100);
        reg.record_ns(t, 200);
        let after = reg.snapshot(SimTime::from_ns(2));
        let d = after.diff(&before);
        assert_eq!(d.counter("frames"), Some(4));
        assert_eq!(d.gauge("occupancy"), Some(2));
        let h = d.timer("lat").expect("timer registered");
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn snapshot_json_round_trips_through_serde_json() {
        let mut reg = Registry::new(true);
        let c = reg.counter("fabric.link0.frames_sent").unwrap();
        let t = reg.timer("fabric.path0.rtt_ns").unwrap();
        reg.add(c, 11);
        reg.record_ns(t, 950);
        let json = reg.snapshot(SimTime::from_ns(5)).to_json();
        let v: Value = serde_json::from_str(&json).expect("snapshot JSON parses");
        let metrics = v.get("metrics").expect("metrics key");
        let frames = metrics
            .get("fabric.link0.frames_sent")
            .and_then(|m| m.get("value"))
            .expect("counter exported");
        assert_eq!(*frames, Value::UInt(11));
        let p50 = metrics
            .get("fabric.path0.rtt_ns")
            .and_then(|m| m.get("p50_ns"))
            .expect("timer quantiles exported");
        assert_eq!(*p50, Value::UInt(950));
    }

    #[test]
    fn snapshot_paths_sort_lexicographically() {
        let mut reg = Registry::new(true);
        reg.counter("z.last").unwrap();
        reg.counter("a.first").unwrap();
        reg.counter("m.middle").unwrap();
        let snap = reg.snapshot(SimTime::ZERO);
        let paths: Vec<&str> = snap.metrics.keys().map(String::as_str).collect();
        assert_eq!(paths, ["a.first", "m.middle", "z.last"]);
    }
}
