//! Picosecond-resolution simulated time.
//!
//! [`SimTime`] is used both as an *instant* (time since simulation start)
//! and as a *duration*; the arithmetic is identical and the simulators in
//! this workspace never need wall-clock anchoring. One `u64` of picoseconds
//! covers ~213 days of simulated time, far beyond any experiment here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant (or duration) on the simulated clock, in picoseconds.
///
/// # Example
///
/// ```
/// use simkit::time::SimTime;
///
/// let rtt = SimTime::from_ns(950);
/// assert_eq!(rtt.as_ps(), 950_000);
/// assert_eq!((rtt + rtt).as_ns(), 1900);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a `SimTime` from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a `SimTime` from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a `SimTime` from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a `SimTime` from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates a `SimTime` from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// Creates a `SimTime` from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimTime(crate::units::f64_to_u64_saturating((s * 1e12).round()))
    }

    /// Creates a `SimTime` from fractional nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "invalid duration: {ns}");
        SimTime(crate::units::f64_to_u64_saturating((ns * 1e3).round()))
    }

    /// Picoseconds since simulation start.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds since simulation start (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole microseconds since simulation start (truncating).
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction; clamps at zero instead of underflowing.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Saturating addition; clamps at [`SimTime::MAX`] instead of
    /// overflowing. The clamp is what makes exponential-backoff
    /// doubling safe at arbitrary attempt counts.
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Returns the larger of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Whether this is the zero instant.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime(crate::units::f64_to_u64_saturating(
            (self.0 as f64 * rhs).round(),
        ))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps < 1_000 {
            write!(f, "{ps}ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3)
        } else if ps < 1_000_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else {
            write!(f, "{:.3}s", ps as f64 / 1e12)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_ns(950).as_ps(), 950_000);
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(2).as_us(), 2_000);
        assert_eq!(SimTime::from_secs(1).as_ns(), 1_000_000_000);
        assert!((SimTime::from_secs_f64(0.5).as_secs_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(4);
        assert_eq!((a + b).as_ns(), 14);
        assert_eq!((a - b).as_ns(), 6);
        assert_eq!((a * 3).as_ns(), 30);
        assert_eq!((a / 2).as_ns(), 5);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(SimTime::MAX.saturating_add(a), SimTime::MAX);
        assert_eq!(a.saturating_add(b).as_ns(), 14);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::from_ps(5).to_string(), "5ps");
        assert_eq!(SimTime::from_ns(950).to_string(), "950.000ns");
        assert_eq!(SimTime::from_us(613).to_string(), "613.000us");
        assert_eq!(SimTime::ZERO.to_string(), "0s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4).map(SimTime::from_ns).sum();
        assert_eq!(total.as_ns(), 10);
    }

    #[test]
    fn fractional_ns_constructor() {
        assert_eq!(SimTime::from_ns_f64(2.494).as_ps(), 2494);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_seconds_panic() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
