//! Size, rate and frequency constants shared by the whole workspace.

/// One kibibyte (2^10 bytes).
pub const KIB: u64 = 1 << 10;
/// One mebibyte (2^20 bytes).
pub const MIB: u64 = 1 << 20;
/// One gibibyte (2^30 bytes).
pub const GIB: u64 = 1 << 30;
/// One tebibyte (2^40 bytes).
pub const TIB: u64 = 1 << 40;

/// One gigabit per second expressed in bytes per second.
pub const GBIT_PER_SEC_IN_BYTES: f64 = 1e9 / 8.0;

/// Converts a rate in Gbit/s to bytes per second.
///
/// ```
/// use simkit::units::gbit_to_bytes_per_sec;
/// assert_eq!(gbit_to_bytes_per_sec(100.0), 12.5e9);
/// ```
pub fn gbit_to_bytes_per_sec(gbit: f64) -> f64 {
    gbit * GBIT_PER_SEC_IN_BYTES
}

/// Converts bytes per second to GiB/s (the unit the paper's Fig. 5 uses).
///
/// ```
/// use simkit::units::bytes_per_sec_to_gib;
/// assert!((bytes_per_sec_to_gib(12.5e9) - 11.64).abs() < 0.01);
/// ```
pub fn bytes_per_sec_to_gib(bps: f64) -> f64 {
    bps / GIB as f64
}

/// Saturating conversion from `f64` to `u64`: negative and NaN inputs
/// map to 0, values beyond `u64::MAX` map to `u64::MAX`.
///
/// This is the one blessed float→integer gate for unit-bearing values;
/// the rest of the workspace routes through it instead of casting
/// directly (tflint TF005 flags raw `as` casts on time/byte quantities).
///
/// ```
/// use simkit::units::f64_to_u64_saturating;
/// assert_eq!(f64_to_u64_saturating(2494.0), 2494);
/// assert_eq!(f64_to_u64_saturating(-1.0), 0);
/// assert_eq!(f64_to_u64_saturating(f64::NAN), 0);
/// assert_eq!(f64_to_u64_saturating(1e300), u64::MAX);
/// ```
pub fn f64_to_u64_saturating(x: f64) -> u64 {
    // Float→int `as` saturates by definition in Rust (NaN → 0), so this
    // single audited cast is safe by construction.
    // (The one blessed float→integer gate; TF005 audits casts elsewhere.)
    x as u64
}

/// Picoseconds per cycle at a given frequency in MHz.
///
/// ```
/// use simkit::units::ps_per_cycle_mhz;
/// // The ThymesisFlow prototype clocks its three domains at 401 MHz.
/// assert_eq!(ps_per_cycle_mhz(401.0), 2494);
/// ```
pub fn ps_per_cycle_mhz(mhz: f64) -> u64 {
    f64_to_u64_saturating((1e6 / mhz).round())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_constants() {
        assert_eq!(KIB, 1024);
        assert_eq!(MIB, 1024 * KIB);
        assert_eq!(GIB, 1024 * MIB);
        assert_eq!(TIB, 1024 * GIB);
    }

    #[test]
    fn rate_conversions() {
        assert_eq!(gbit_to_bytes_per_sec(25.0), 3.125e9);
        let gib = bytes_per_sec_to_gib(gbit_to_bytes_per_sec(100.0));
        assert!((gib - 11.6415).abs() < 1e-3);
    }

    #[test]
    fn cycle_time() {
        // 250 MHz -> 4000 ps.
        assert_eq!(ps_per_cycle_mhz(250.0), 4000);
    }
}
