//! Property tests: the hybrid calendar/heap event engine pops in
//! *identical* order to the reference pure-heap engine for arbitrary
//! schedules — including same-instant bursts, far-future jumps past the
//! calendar horizon, and schedules interleaved with pops. This is the
//! invariant that lets the fast path replace the heap without changing
//! a single simulation trajectory.

use proptest::prelude::*;
use simkit::event::EventQueue;
use simkit::time::SimTime;

/// One scripted operation applied to both queues in lockstep.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule a burst of events `delta_ps` after the current instant
    /// (0 = a same-instant burst at `now`).
    Schedule { delta_ps: u64, burst: usize },
    /// Pop up to `n` events.
    Pop(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Deltas span flit ticks (~2.5 ns), RTT-scale (~1 µs) and
        // far-future beyond the ~4.2 µs calendar horizon.
        (0u64..8_000_000u64, 1usize..5)
            .prop_map(|(delta_ps, burst)| Op::Schedule { delta_ps, burst }),
        (0u64..5_000u64, 1usize..5)
            .prop_map(|(delta_ps, burst)| Op::Schedule { delta_ps, burst }),
        (1usize..8).prop_map(Op::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every pop from the hybrid queue equals the pop from the heap
    /// queue — same time, same event — across arbitrary op scripts.
    #[test]
    fn hybrid_and_heap_pop_identically(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut hybrid = EventQueue::new();
        let mut heap = EventQueue::new_heap_only();
        let mut tag = 0u64;
        for op in ops {
            match op {
                Op::Schedule { delta_ps, burst } => {
                    for _ in 0..burst {
                        let at_a = hybrid.now() + SimTime::from_ps(delta_ps);
                        let at_b = heap.now() + SimTime::from_ps(delta_ps);
                        prop_assert_eq!(at_a, at_b, "clocks diverged");
                        hybrid.schedule(at_a, tag);
                        heap.schedule(at_b, tag);
                        tag += 1;
                    }
                }
                Op::Pop(n) => {
                    for _ in 0..n {
                        let a = hybrid.pop();
                        let b = heap.pop();
                        prop_assert_eq!(a, b, "pop order diverged");
                        if a.is_none() {
                            break;
                        }
                    }
                }
            }
            prop_assert_eq!(hybrid.len(), heap.len());
            prop_assert_eq!(hybrid.peek_time(), heap.peek_time());
        }
        // Drain whatever remains: the tails must match too.
        loop {
            let a = hybrid.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b, "tail drain diverged");
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(hybrid.popped(), heap.popped());
    }

    /// Same-instant bursts pop FIFO on both engines even when the burst
    /// lands at the *current* instant of a half-drained queue.
    #[test]
    fn coincident_bursts_stay_fifo(
        pre in prop::collection::vec(0u64..2_000u64, 1..30),
        burst in 2usize..20,
    ) {
        let mut hybrid = EventQueue::new();
        let mut heap = EventQueue::new_heap_only();
        let mut tag = 0u64;
        for &t in &pre {
            hybrid.schedule(SimTime::from_ns(t), tag);
            heap.schedule(SimTime::from_ns(t), tag);
            tag += 1;
        }
        // Pop one to move `now` forward, then burst at exactly `now`.
        let a = hybrid.pop();
        prop_assert_eq!(a, heap.pop());
        for _ in 0..burst {
            hybrid.schedule(hybrid.now(), tag);
            heap.schedule(heap.now(), tag);
            tag += 1;
        }
        let mut last_burst_tag = None;
        loop {
            let a = hybrid.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b);
            let Some((t, v)) = a else { break };
            if t == SimTime::from_ns(pre.iter().copied().min().unwrap_or(0)) || v >= pre.len() as u64 {
                // Burst tags must come out in offer order.
                if v >= pre.len() as u64 {
                    if let Some(prev) = last_burst_tag {
                        prop_assert!(v > prev, "burst FIFO violated: {v} after {prev}");
                    }
                    last_burst_tag = Some(v);
                }
            }
        }
    }
}
