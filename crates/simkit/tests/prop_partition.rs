//! Property tests for the conservative partition runner: across random
//! topologies, event schedules and hop latencies,
//!
//! * a window never admits a cross-partition event earlier than the
//!   lookahead bound — observable as causal safety: no delivery ever
//!   lands at or before an event its destination already processed;
//! * [`simkit::partition::window_bound`] is exactly
//!   `min(next event) + lookahead`;
//! * the run's output is bit-identical for any worker count.

use std::convert::Infallible;

use proptest::prelude::*;
use simkit::event::EventQueue;
use simkit::partition::{run_conservative, window_bound, Outbox, Partition};
use simkit::time::SimTime;

/// One randomly wired node: processes local events, forwards each to a
/// payload-derived neighbour one hop later while budget lasts, and
/// checks causal safety on every delivery.
struct Node {
    id: usize,
    fanout: usize,
    hop: SimTime,
    budget: u64,
    queue: EventQueue<u64>,
    log: Vec<(SimTime, u64)>,
    max_processed: SimTime,
    causal_violation: Option<(SimTime, SimTime)>,
}

impl Node {
    fn new(id: usize, fanout: usize, hop: SimTime, budget: u64, seeds: &[u64]) -> Self {
        let mut queue = EventQueue::new();
        for (i, &delta) in seeds.iter().enumerate() {
            queue.schedule(
                SimTime::from_ps(1 + delta),
                (id as u64) << 32 | i as u64,
            );
        }
        Node {
            id,
            fanout,
            hop,
            budget,
            queue,
            log: Vec::new(),
            max_processed: SimTime::ZERO,
            causal_violation: None,
        }
    }
}

impl Partition for Node {
    type Msg = u64;
    type Error = Infallible;

    fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    fn run_window(&mut self, bound: SimTime, outbox: &mut Outbox<u64>) -> Result<(), Infallible> {
        while self.queue.peek_time().is_some_and(|t| t < bound) {
            let (t, marker) = self.queue.pop().expect("peeked event exists");
            self.max_processed = self.max_processed.max(t);
            self.log.push((t, marker));
            if self.budget > 0 && self.fanout > 1 {
                self.budget -= 1;
                // Destination derived from the payload: any partition
                // but this one, so rings, stars and all-to-all shapes
                // all arise across random scripts.
                let dest = (self.id + 1 + (marker as usize % (self.fanout - 1))) % self.fanout;
                outbox.send(dest, t + self.hop, marker.wrapping_mul(31).wrapping_add(7));
            }
        }
        Ok(())
    }

    fn deliver(&mut self, at: SimTime, msg: u64) -> Result<(), Infallible> {
        // The conservative contract: a delivery may never land at or
        // before an event this partition already processed.
        if at <= self.max_processed && self.causal_violation.is_none() {
            self.causal_violation = Some((at, self.max_processed));
        }
        self.queue.schedule(at, msg);
        Ok(())
    }
}

/// Everything observable about a finished run, for bit-identity checks.
fn digest(parts: &[Node]) -> Vec<(usize, Vec<(SimTime, u64)>, u64)> {
    parts
        .iter()
        .map(|p| (p.id, p.log.clone(), p.queue.popped()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random topology + latencies: the run completes without protocol
    /// errors, no partition ever sees a delivery in its processed past,
    /// and every worker count produces the same digest as sequential.
    #[test]
    fn windows_never_admit_events_before_the_lookahead_bound(
        n in 2usize..7,
        lookahead_ps in 1u64..200_000,
        hop_extra_ps in 0u64..300_000,
        budget in 0u64..64,
        seeds in prop::collection::vec(
            prop::collection::vec(0u64..2_000_000, 1..6), 2..7),
        workers in 2usize..8,
    ) {
        let n = n.min(seeds.len());
        let lookahead = SimTime::from_ps(lookahead_ps);
        // Senders stamp `processed + hop`; hop >= lookahead keeps the
        // window contract, any extra models slower boundary links.
        let hop = SimTime::from_ps(lookahead_ps + hop_extra_ps);
        let build = || -> Vec<Node> {
            (0..n).map(|i| Node::new(i, n, hop, budget, &seeds[i])).collect()
        };

        let mut reference = build();
        run_conservative(&mut reference, lookahead, 1).expect("sequential run succeeds");
        for p in &reference {
            prop_assert!(
                p.causal_violation.is_none(),
                "partition {} saw delivery at {:?} with past {:?}",
                p.id, p.causal_violation.unwrap().0, p.causal_violation.unwrap().1
            );
        }

        let mut parallel = build();
        run_conservative(&mut parallel, lookahead, workers).expect("parallel run succeeds");
        for p in &parallel {
            prop_assert!(p.causal_violation.is_none());
        }
        prop_assert_eq!(digest(&parallel), digest(&reference));
    }

    /// The bound is exactly `min(next event times) + lookahead`, and
    /// `None` only when every partition is drained.
    #[test]
    fn window_bound_is_min_next_time_plus_lookahead(
        raw in prop::collection::vec(
            (any::<bool>(), 0u64..u64::from(u32::MAX)), 1..16),
        lookahead_ps in 1u64..1_000_000,
    ) {
        // (drained?, next event time): drained partitions report None.
        let times: Vec<Option<u64>> = raw
            .iter()
            .map(|&(drained, t)| if drained { None } else { Some(t) })
            .collect();
        let lookahead = SimTime::from_ps(lookahead_ps);
        let sim_times: Vec<Option<SimTime>> =
            times.iter().map(|o| o.map(SimTime::from_ps)).collect();
        let want = times
            .iter()
            .flatten()
            .min()
            .map(|&t| SimTime::from_ps(t + lookahead_ps));
        prop_assert_eq!(window_bound(sim_times.clone(), lookahead), want);
        if let Some(bound) = window_bound(sim_times.clone(), lookahead) {
            let t_min = sim_times.iter().flatten().min().copied().unwrap();
            // Safety in one line: anything processed this window is at
            // >= t_min, so its sends land at >= t_min + lookahead = bound.
            prop_assert_eq!(t_min.checked_add(lookahead), Some(bound));
            prop_assert!(bound > t_min);
        }
    }
}
