//! Property tests: histogram and event-queue invariants.

use proptest::prelude::*;
use simkit::event::EventQueue;
use simkit::stats::Histogram;
use simkit::time::SimTime;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn quantiles_are_monotone(values in prop::collection::vec(0u64..1_000_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut prev = 0;
        for i in 0..=20 {
            let q = h.quantile(i as f64 / 20.0);
            prop_assert!(q >= prev, "quantile regressed at {i}");
            prev = q;
        }
        prop_assert!(h.quantile(0.0) >= h.min() || h.quantile(0.0) <= h.max());
        prop_assert!(h.quantile(1.0) >= h.max() - h.max() / 16);
    }

    /// Any quantile has bounded relative error against the exact
    /// order statistic.
    #[test]
    fn quantile_error_is_bounded(
        mut values in prop::collection::vec(1u64..100_000_000, 10..300),
        q in 0.05f64..0.95,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1] as f64;
        let got = h.quantile(q) as f64;
        prop_assert!(
            (got - exact).abs() <= exact * 0.04 + 1.0,
            "q={q}: got {got}, exact {exact}"
        );
    }

    /// Merging histograms equals recording the concatenation.
    #[test]
    fn merge_equals_concat(
        a in prop::collection::vec(0u64..1_000_000, 1..100),
        b in prop::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hc = Histogram::new();
        for &v in &a {
            ha.record(v);
            hc.record(v);
        }
        for &v in &b {
            hb.record(v);
            hc.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hc.count());
        prop_assert_eq!(ha.min(), hc.min());
        prop_assert_eq!(ha.max(), hc.max());
        for i in 0..=10 {
            prop_assert_eq!(ha.quantile(i as f64 / 10.0), hc.quantile(i as f64 / 10.0));
        }
    }

    /// The event queue delivers in non-decreasing time order with FIFO
    /// tie-breaking, for arbitrary schedules.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ns(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO violated within a tie");
                }
            }
            last = Some((t, idx));
        }
    }
}
