//! Sanitize-feature coverage for the event queue: the monotonic-time
//! assertion in `EventQueue::pop` is active and normal schedules pass it.

#![cfg(feature = "sanitize")]

use simkit::event::EventQueue;
use simkit::time::SimTime;

#[test]
fn event_queue_time_is_monotone_under_sanitize() {
    let mut q = EventQueue::new();
    for i in (1..=100u64).rev() {
        q.schedule(SimTime::from_ns(i), i);
    }
    let mut last = SimTime::ZERO;
    while let Some((t, _)) = q.pop() {
        assert!(t >= last);
        last = t;
    }
    assert_eq!(last, SimTime::from_ns(100));
}
