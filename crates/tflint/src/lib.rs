//! tflint — domain-aware static analysis for the ThymesisFlow workspace.
//!
//! The simulator's credibility rests on determinism and unit-correct
//! arithmetic (950 ns flit RTT, credit-conserving LLC backpressure,
//! 12.5 GiB/s channel ceilings). tflint enforces the rules that keep
//! those properties from silently eroding:
//!
//! | rule  | checks                                                        |
//! |-------|---------------------------------------------------------------|
//! | TF001 | no wall-clock (`Instant`/`SystemTime`) in simulation crates   |
//! | TF002 | no entropy- or ad-hoc-seeded RNG outside `simkit::rng`        |
//! | TF003 | no bare `u64`/`f64` params with unit-implying names in public APIs (unit crates + `core::fabric`) |
//! | TF004 | no `unwrap()`/`expect()`/`panic!` in non-test datapath code (datapath crates + `core::fabric`) |
//! | TF005 | no truncating `as` casts on time/credit/byte values           |
//! | TF006 | no float `==`/`!=` in stats/bandwidth code                    |
//! | TF007 | no wall-clock reads (`Instant::now`/`SystemTime::now`/`UNIX_EPOCH`) in simulation crates, tests included |
//! | TF008 | no `unwrap()`/`expect()` in failure-recovery modules (chaos/recovery/retry files, any crate) |
//!
//! A finding is suppressed by a `// tflint::allow(TFnnn)` comment on the
//! same line or the line directly above; allows should carry a reason.
//!
//! The issue that introduced this tool asked for a `syn`-based parser;
//! this container has no registry access, so the tool instead carries a
//! small hand-rolled lexer (comments/strings/lifetimes handled, tokens
//! carry line:column spans). The rules only need token patterns, not
//! type information, so the diagnostics are identical in practice.
//!
//! Run it as `cargo run -p tflint -- check`, or let the per-crate
//! `tflint_gate` tests run it under plain `cargo test`.

use std::fmt;
use std::io;
use std::path::Path;

/// Rule IDs with one-line descriptions, for `--help`-style output.
pub const RULES: &[(&str, &str)] = &[
    ("TF001", "no wall-clock (std::time::Instant/SystemTime) in simulation crates"),
    ("TF002", "no entropy-seeded or ad-hoc-seeded RNG (thread_rng/from_entropy/OsRng/seed_from_u64) outside simkit::rng"),
    ("TF003", "no bare u64/f64 parameters with unit-implying names in public APIs"),
    ("TF004", "no unwrap()/expect()/panic! in non-test datapath code"),
    ("TF005", "no truncating `as` casts on time/credit/byte values"),
    ("TF006", "no float ==/!= comparisons in stats/bandwidth code"),
    ("TF007", "no wall-clock reads (Instant::now/SystemTime::now/UNIX_EPOCH) in simulation crates, tests included"),
    ("TF008", "no unwrap()/expect() in failure-recovery modules (chaos/recovery/retry files, any crate)"),
];

/// One lint finding, anchored to a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule ID (`TF001`..`TF008`).
    pub rule: &'static str,
    /// Path of the offending file, as given to the checker.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}:{}: {}",
            self.rule, self.file, self.line, self.col, self.message
        )
    }
}

/// Renders diagnostics one per line (empty string when clean).
pub fn render(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(Diagnostic::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}

// ------------------------------------------------------------------ lexer

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Ident,
    Punct,
    Str,
    Char,
    Int,
    Float,
    Lifetime,
}

#[derive(Debug, Clone)]
struct Tok {
    kind: Kind,
    text: String,
    line: u32,
    col: u32,
}

/// A `// tflint::allow(RULE, ...)` comment: the rules it names plus the
/// line it sits on. It suppresses findings on its own line and the next.
#[derive(Debug, Clone)]
struct Allow {
    line: u32,
    rules: Vec<String>,
}

struct Lexed {
    toks: Vec<Tok>,
    allows: Vec<Allow>,
}

const TWO_CHAR_OPS: &[&str] = &[
    "==", "!=", "<=", ">=", "=>", "->", "&&", "||", "..", "::", "<<", ">>",
];

fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut allows = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! advance {
        ($n:expr) => {{
            let n = $n;
            for _ in 0..n {
                if bytes.get(i) == Some(&b'\n') {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
                i += 1;
            }
        }};
    }

    while i < bytes.len() {
        let b = bytes[i];
        let (tline, tcol) = (line, col);

        // Whitespace.
        if b.is_ascii_whitespace() {
            advance!(1);
            continue;
        }

        // Line comments (also the allow channel).
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            let end = src[i..].find('\n').map_or(bytes.len(), |n| i + n);
            let comment = &src[i..end];
            if let Some(a) = parse_allow(comment, tline) {
                allows.push(a);
            }
            advance!(end - i);
            continue;
        }

        // Block comments (nested).
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 1;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            advance!(j - i);
            continue;
        }

        // Raw strings and byte strings: r"..", r#".."#, br"..", b"..".
        if b == b'r' || b == b'b' {
            if let Some(len) = raw_string_len(&src[i..]) {
                toks.push(Tok {
                    kind: Kind::Str,
                    text: String::new(),
                    line: tline,
                    col: tcol,
                });
                advance!(len);
                continue;
            }
        }

        // Plain strings.
        if b == b'"' {
            let mut j = i + 1;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            toks.push(Tok {
                kind: Kind::Str,
                text: String::new(),
                line: tline,
                col: tcol,
            });
            advance!(j - i);
            continue;
        }

        // Lifetimes vs char literals.
        if b == b'\'' {
            let next = bytes.get(i + 1).copied().unwrap_or(0);
            let after = bytes.get(i + 2).copied().unwrap_or(0);
            if (next.is_ascii_alphabetic() || next == b'_') && after != b'\'' {
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                toks.push(Tok {
                    kind: Kind::Lifetime,
                    text: src[i..j].to_string(),
                    line: tline,
                    col: tcol,
                });
                advance!(j - i);
            } else {
                let mut j = i + 1;
                while j < bytes.len() {
                    match bytes[j] {
                        b'\\' => j += 2,
                        b'\'' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                toks.push(Tok {
                    kind: Kind::Char,
                    text: String::new(),
                    line: tline,
                    col: tcol,
                });
                advance!(j - i);
            }
            continue;
        }

        // Numbers. `1..120` stops before the `..`; `0.5` and `1e12` are
        // floats; `0xAE` stays an integer despite the hex `E`.
        if b.is_ascii_digit() {
            let mut j = i;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            if bytes.get(j) == Some(&b'.') && bytes.get(j + 1).is_some_and(u8::is_ascii_digit) {
                j += 1;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
            }
            let text = &src[i..j];
            let is_float = !text.starts_with("0x")
                && !text.starts_with("0b")
                && !text.starts_with("0o")
                && (text.contains('.') || text.contains(['e', 'E']));
            toks.push(Tok {
                kind: if is_float { Kind::Float } else { Kind::Int },
                text: text.to_string(),
                line: tline,
                col: tcol,
            });
            advance!(j - i);
            continue;
        }

        // Identifiers and keywords.
        if b.is_ascii_alphabetic() || b == b'_' {
            let mut j = i;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            toks.push(Tok {
                kind: Kind::Ident,
                text: src[i..j].to_string(),
                line: tline,
                col: tcol,
            });
            advance!(j - i);
            continue;
        }

        // Multi-char operators, longest first.
        if src[i..].starts_with("..=") {
            toks.push(Tok {
                kind: Kind::Punct,
                text: "..=".into(),
                line: tline,
                col: tcol,
            });
            advance!(3);
            continue;
        }
        if let Some(op) = TWO_CHAR_OPS.iter().find(|op| src[i..].starts_with(**op)) {
            toks.push(Tok {
                kind: Kind::Punct,
                text: (*op).to_string(),
                line: tline,
                col: tcol,
            });
            advance!(2);
            continue;
        }

        toks.push(Tok {
            kind: Kind::Punct,
            text: (b as char).to_string(),
            line: tline,
            col: tcol,
        });
        advance!(1);
    }

    Lexed { toks, allows }
}

/// Length of a raw/byte string literal starting at `s`, if one starts
/// here: `r"…"`, `r#"…"#`, `br"…"`, or `b"…"`.
fn raw_string_len(s: &str) -> Option<usize> {
    let after_b = s.strip_prefix('b');
    let rest = after_b.unwrap_or(s);
    let after_r = rest.strip_prefix('r');
    let had_r = after_r.is_some();
    let rest = after_r.unwrap_or(rest);
    let hashes = rest.bytes().take_while(|&c| c == b'#').count();
    let rest = &rest[hashes..];
    if !rest.starts_with('"') {
        return None;
    }
    if !had_r && (hashes > 0 || after_b.is_none()) {
        // `b#...` is not a literal, and a bare `"` is handled elsewhere.
        return None;
    }
    let prefix_len = s.len() - rest.len() + 1;
    let body = &rest[1..];
    if had_r {
        let closer = format!("\"{}", "#".repeat(hashes));
        let end = body.find(&closer)?;
        Some(prefix_len + end + closer.len())
    } else {
        // b"...": escapes apply.
        let bytes = body.as_bytes();
        let mut j = 0;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'"' => return Some(prefix_len + j + 1),
                _ => j += 1,
            }
        }
        None
    }
}

fn parse_allow(comment: &str, line: u32) -> Option<Allow> {
    let idx = comment.find("tflint::allow(")?;
    let rest = &comment[idx + "tflint::allow(".len()..];
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        None
    } else {
        Some(Allow { line, rules })
    }
}

// --------------------------------------------------------- test-code map

/// Marks the token ranges belonging to `#[cfg(test)]` / `#[test]` items
/// (the attribute, the item header, and its braced body).
fn test_code_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).is_some_and(|t| t.text == "[") {
            // Collect the attribute's tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1;
            let mut saw_test = false;
            let mut saw_cfg = false;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "cfg" => saw_cfg = true,
                    "test" => saw_test = true,
                    _ => {}
                }
                j += 1;
            }
            // `#[test]` alone, or `test` appearing inside a `#[cfg(...)]`
            // predicate (covers `#[cfg(test)]` and `#[cfg(all(test, ..))]`).
            let is_bare_test = saw_test && !saw_cfg && j == i + 4;
            if saw_test && (saw_cfg || is_bare_test) {
                // Skip any further attributes between this one and the item.
                let mut k = j;
                while k + 1 < toks.len() && toks[k].text == "#" && toks[k + 1].text == "[" {
                    let mut d = 1;
                    k += 2;
                    while k < toks.len() && d > 0 {
                        match toks[k].text.as_str() {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                // Find the item's body (first top-level `{`) or `;`.
                let mut d = 0i32;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "(" | "[" => d += 1,
                        ")" | "]" => d -= 1,
                        ";" if d == 0 => {
                            k += 1;
                            break;
                        }
                        "{" if d == 0 => {
                            let mut bd = 1;
                            k += 1;
                            while k < toks.len() && bd > 0 {
                                match toks[k].text.as_str() {
                                    "{" => bd += 1,
                                    "}" => bd -= 1,
                                    _ => {}
                                }
                                k += 1;
                            }
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                for m in mask.iter_mut().take(k).skip(i) {
                    *m = true;
                }
                i = k;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

// ------------------------------------------------------------ rule scopes

/// Crates whose simulated time must stay virtual (TF001).
const SIM_CRATES: &[&str] = &[
    "simkit",
    "netsim",
    "llc",
    "opencapi",
    "rmmu",
    "routing",
    "hostsim",
    "ctrlplane",
    "core",
    "workloads",
    "dcsim",
    "thymesisflow",
];

/// Crates whose public APIs must use unit newtypes (TF003).
const UNIT_API_CRATES: &[&str] = &["simkit", "llc", "netsim", "routing"];

/// Datapath crates where panics are forbidden outside tests (TF004).
const DATAPATH_CRATES: &[&str] = &["llc", "routing", "rmmu", "opencapi", "netsim"];

/// The core crate's fabric module carries the flit-level datapath after
/// the component/port refactor, so TF003 and TF004 extend to it even
/// though `core` as a whole (rack orchestration, models) stays out of
/// scope.
fn fabric_scoped(crate_name: &str, rel_path: &str) -> bool {
    crate_name == "core" && rel_path.contains("fabric")
}

/// Failure-recovery modules where panics are forbidden regardless of
/// crate (TF008). A recovery path that panics converts the typed fault
/// it existed to deliver into silence — the exact failure mode the
/// chaos harness exists to rule out. Scoped by file name so the rule
/// follows the code wherever recovery machinery lives.
fn recovery_scoped(rel_path: &str) -> bool {
    let file = rel_path.rsplit('/').next().unwrap_or(rel_path);
    file.contains("chaos") || file.contains("recovery") || file.contains("retry")
}

/// Crates with timing/credit arithmetic where `as` casts are audited (TF005).
const CAST_CRATES: &[&str] = &["llc", "simkit"];

/// Crates with stats/bandwidth float math (TF006).
const FLOAT_CMP_CRATES: &[&str] = &["simkit", "netsim", "dcsim", "workloads", "bench"];

fn in_scope(list: &[&str], crate_name: &str) -> bool {
    list.contains(&crate_name)
}

// ----------------------------------------------------------------- rules

/// Lints one source file as it would appear in crate `crate_name` at
/// `rel_path`. This is the fixture-test entry point: rules are scoped by
/// crate name exactly as in a workspace run.
pub fn check_source(crate_name: &str, rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let Lexed { toks, allows } = lex(source);
    let test_mask = test_code_mask(&toks);
    let mut diags = Vec::new();

    let push = |diags: &mut Vec<Diagnostic>, rule: &'static str, tok: &Tok, message: String| {
        diags.push(Diagnostic {
            rule,
            file: rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
        });
    };

    let is_rng_home = crate_name == "simkit" && rel_path.ends_with("src/rng.rs");

    for (i, tok) in toks.iter().enumerate() {
        let in_test = test_mask[i];

        // TF001: wall-clock types.
        if in_scope(SIM_CRATES, crate_name)
            && !in_test
            && tok.kind == Kind::Ident
            && (tok.text == "Instant" || tok.text == "SystemTime")
        {
            push(
                &mut diags,
                "TF001",
                tok,
                format!(
                    "wall-clock type `{}` breaks simulation determinism; model time with `simkit::time::SimTime`",
                    tok.text
                ),
            );
        }

        // TF002: raw RNG construction outside simkit::rng. Entropy
        // sources break reproducibility outright; ad-hoc `seed_from_u64`
        // calls create streams the sweep harness cannot track, so both
        // route through `DetRng` (`split_stream` for per-point streams,
        // `fork` for per-component streams).
        if !is_rng_home
            && tok.kind == Kind::Ident
            && matches!(
                tok.text.as_str(),
                "thread_rng" | "from_entropy" | "OsRng" | "seed_from_u64"
            )
        {
            let message = if tok.text == "seed_from_u64" {
                "ad-hoc RNG seeding bypasses deterministic stream splitting; use `DetRng::split_stream(master_seed, stream)` (or `DetRng::fork`) instead".to_string()
            } else {
                format!(
                    "entropy-seeded RNG `{}` breaks reproducibility; derive a seeded stream from `simkit::rng::DetRng`",
                    tok.text
                )
            };
            push(&mut diags, "TF002", tok, message);
        }

        // TF004: panics in datapath library code.
        if (in_scope(DATAPATH_CRATES, crate_name) || fabric_scoped(crate_name, rel_path))
            && !in_test
            && tok.kind == Kind::Ident
        {
            let prev_dot = i > 0 && toks[i - 1].text == ".";
            let next = toks.get(i + 1).map(|t| t.text.as_str());
            if (tok.text == "unwrap" || tok.text == "expect") && prev_dot && next == Some("(") {
                push(
                    &mut diags,
                    "TF004",
                    tok,
                    format!(
                        "`.{}()` can panic mid-datapath; return a typed error (`LlcError`/`RouteError`) or justify with tflint::allow",
                        tok.text
                    ),
                );
            }
            if tok.text == "panic" && next == Some("!") {
                push(
                    &mut diags,
                    "TF004",
                    tok,
                    "`panic!` in datapath code aborts the whole simulation; return a typed error or justify with tflint::allow"
                        .to_string(),
                );
            }
        }

        // TF008: panics in failure-recovery modules. TF004 covers the
        // datapath crates and core::fabric; this extends the no-panic
        // rule to chaos/recovery/retry files in every other crate.
        if recovery_scoped(rel_path)
            && !(in_scope(DATAPATH_CRATES, crate_name) || fabric_scoped(crate_name, rel_path))
            && !in_test
            && tok.kind == Kind::Ident
            && (tok.text == "unwrap" || tok.text == "expect")
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
        {
            push(
                &mut diags,
                "TF008",
                tok,
                format!(
                    "`.{}()` in recovery code turns the typed fault it should deliver into a panic; propagate the error or justify with tflint::allow",
                    tok.text
                ),
            );
        }

        // TF005: truncating casts on unit-carrying values.
        if in_scope(CAST_CRATES, crate_name)
            && !in_test
            && tok.kind == Kind::Ident
            && tok.text == "as"
        {
            if let Some(target) = toks.get(i + 1) {
                let narrow = matches!(
                    target.text.as_str(),
                    "u8" | "u16" | "u32" | "i8" | "i16" | "i32"
                );
                let wide_int = matches!(
                    target.text.as_str(),
                    "u64" | "i64" | "usize" | "isize" | "u128" | "i128"
                );
                if narrow {
                    push(
                        &mut diags,
                        "TF005",
                        tok,
                        format!(
                            "narrowing `as {}` silently truncates; use `try_from` (or a widening `from`) so overflow is a checked error",
                            target.text
                        ),
                    );
                } else if wide_int && cast_source_is_unit_like(&toks, i) {
                    push(
                        &mut diags,
                        "TF005",
                        tok,
                        format!(
                            "`as {}` on a time/credit/byte expression truncates toward zero; use a checked conversion helper",
                            target.text
                        ),
                    );
                }
            }
        }

        // TF007: wall-clock *reads*. TF001 bans the types in library
        // code; actual clock reads are banned even inside test code,
        // because tests pin deterministic-replay trajectories and a
        // wall-clock read invalidates the comparison. Telemetry and
        // span tracing must run off `SimTime` alone.
        if in_scope(SIM_CRATES, crate_name) && tok.kind == Kind::Ident {
            let clock_read = (tok.text == "Instant" || tok.text == "SystemTime")
                && toks.get(i + 1).is_some_and(|t| t.text == "::")
                && toks.get(i + 2).is_some_and(|t| t.text == "now");
            if clock_read || tok.text == "UNIX_EPOCH" {
                push(
                    &mut diags,
                    "TF007",
                    tok,
                    format!(
                        "wall-clock read `{}` breaks deterministic replay (even in tests); stamp with the event queue's `SimTime` instead",
                        if tok.text == "UNIX_EPOCH" {
                            "UNIX_EPOCH".to_string()
                        } else {
                            format!("{}::now", tok.text)
                        }
                    ),
                );
            }
        }

        // TF006: float equality.
        if in_scope(FLOAT_CMP_CRATES, crate_name)
            && !in_test
            && tok.kind == Kind::Punct
            && (tok.text == "==" || tok.text == "!=")
        {
            let float_neighbor = (i > 0 && toks[i - 1].kind == Kind::Float)
                || toks.get(i + 1).is_some_and(|t| t.kind == Kind::Float);
            if float_neighbor {
                push(
                    &mut diags,
                    "TF006",
                    tok,
                    format!(
                        "float `{}` is exact-bit comparison; compare against an epsilon or restructure the predicate",
                        tok.text
                    ),
                );
            }
        }
    }

    // TF003: bare u64/f64 params with unit-implying names in public APIs.
    if in_scope(UNIT_API_CRATES, crate_name) || fabric_scoped(crate_name, rel_path) {
        check_tf003(&toks, &test_mask, rel_path, &mut diags);
    }

    // Apply allow comments: same line or the line directly above.
    diags.retain(|d| {
        !allows
            .iter()
            .any(|a| (a.line == d.line || a.line + 1 == d.line) && a.rules.iter().any(|r| r == d.rule))
    });

    diags.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    diags
}

const UNIT_SUFFIXES: &[&str] = &["_ns", "_us", "_ps", "_bytes", "_gib", "_credits"];

fn check_tf003(toks: &[Tok], test_mask: &[bool], rel_path: &str, diags: &mut Vec<Diagnostic>) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "pub" || test_mask[i] {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // `pub(crate)` and friends are not public API.
        if toks.get(j).is_some_and(|t| t.text == "(") {
            i += 1;
            continue;
        }
        while toks
            .get(j)
            .is_some_and(|t| matches!(t.text.as_str(), "const" | "async" | "unsafe" | "extern"))
        {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.text == "fn") {
            i += 1;
            continue;
        }
        j += 2; // past `fn` and the name
        // Skip generics.
        if toks.get(j).is_some_and(|t| t.text == "<") {
            let mut depth = 1;
            j += 1;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    _ => {}
                }
                j += 1;
            }
        }
        if !toks.get(j).is_some_and(|t| t.text == "(") {
            i = j;
            continue;
        }
        // Walk the parameter list.
        let mut depth = 1;
        j += 1;
        while j < toks.len() && depth > 0 {
            match toks[j].text.as_str() {
                "(" => depth += 1,
                ")" => depth -= 1,
                _ => {}
            }
            if depth >= 1
                && toks[j].kind == Kind::Ident
                && UNIT_SUFFIXES.iter().any(|s| toks[j].text.ends_with(s))
                && toks.get(j + 1).is_some_and(|t| t.text == ":")
                && toks
                    .get(j + 2)
                    .is_some_and(|t| t.text == "u64" || t.text == "f64")
                && toks
                    .get(j + 3)
                    .is_some_and(|t| t.text == "," || t.text == ")")
            {
                diags.push(Diagnostic {
                    rule: "TF003",
                    file: rel_path.to_string(),
                    line: toks[j].line,
                    col: toks[j].col,
                    message: format!(
                        "public parameter `{}: {}` smuggles a unit in its name; take `SimTime`/`Rate`/a unit newtype instead",
                        toks[j].text,
                        toks[j + 2].text
                    ),
                });
            }
            j += 1;
        }
        i = j;
    }
}

/// Looks back from an `as` cast for evidence the source expression
/// carries time/credit/byte units or is floating-point (either way, an
/// integer cast truncates). The scan stays within the statement.
fn cast_source_is_unit_like(toks: &[Tok], as_idx: usize) -> bool {
    let start = as_idx.saturating_sub(12);
    for t in toks[start..as_idx].iter().rev() {
        match t.text.as_str() {
            ";" | "{" | "}" => return false,
            "f64" | "f32" => return true,
            _ => {}
        }
        if t.kind == Kind::Float {
            return true;
        }
        if t.kind == Kind::Ident && !t.text.chars().any(|c| c.is_ascii_uppercase()) {
            let id = &t.text;
            if id.contains("time")
                || id.contains("credit")
                || id.contains("byte")
                || id.contains("flit")
                || UNIT_SUFFIXES.iter().any(|s| id.ends_with(s))
                || matches!(id.as_str(), "ps" | "ns" | "us")
            {
                return true;
            }
        }
    }
    false
}

// ------------------------------------------------------------ file walking

/// Lints every `.rs` file under `crate_dir/src`. The crate name is taken
/// from the directory name (the workspace root maps to `thymesisflow`).
/// `tests/`, `benches/`, and `examples/` are intentionally out of scope.
pub fn check_crate(crate_dir: &Path) -> io::Result<Vec<Diagnostic>> {
    let crate_name = if crate_dir.join("crates").is_dir() {
        "thymesisflow".to_string()
    } else {
        crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("thymesisflow")
            .to_string()
    };
    let mut diags = Vec::new();
    let src = crate_dir.join("src");
    if src.is_dir() {
        walk(&src, &mut |path| {
            let source = std::fs::read_to_string(path)?;
            let rel = path.to_string_lossy().into_owned();
            diags.extend(check_source(&crate_name, &rel, &source));
            Ok(())
        })?;
    }
    diags.sort_by(|a, b| (a.file.clone(), a.line, a.col).cmp(&(b.file.clone(), b.line, b.col)));
    Ok(diags)
}

/// Lints the whole workspace rooted at `root`: the root package plus
/// every crate under `crates/`. `vendor/` (offline dependency stand-ins)
/// and `target/` are never linted.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    // A mistyped root would otherwise scan nothing and report a clean
    // workspace — a false green for CI.
    if !root.join("src").is_dir() && !root.join("crates").is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no src/ or crates/ under {}", root.display()),
        ));
    }
    let mut diags = check_crate(root)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<_> = std::fs::read_dir(&crates)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            diags.extend(check_crate(&dir)?);
        }
    }
    Ok(diags)
}

fn walk(dir: &Path, f: &mut dyn FnMut(&Path) -> io::Result<()>) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, f)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            f(&path)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_tracks_lines_and_skips_comments() {
        let src = "let a = 1; // trailing\n/* block\nspanning */ let b = 2.5;\n";
        let lexed = lex(src);
        let b = lexed.toks.iter().find(|t| t.text == "b").expect("token b");
        assert_eq!(b.line, 3);
        let f = lexed
            .toks
            .iter()
            .find(|t| t.kind == Kind::Float)
            .expect("float");
        assert_eq!(f.text, "2.5");
    }

    #[test]
    fn lexer_separates_ranges_from_floats() {
        let lexed = lex("for i in 0..120 { x = 0.5; }");
        let nums: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| matches!(t.kind, Kind::Int | Kind::Float))
            .map(|t| (t.text.clone(), t.kind))
            .collect();
        assert_eq!(
            nums,
            vec![
                ("0".to_string(), Kind::Int),
                ("120".to_string(), Kind::Int),
                ("0.5".to_string(), Kind::Float),
            ]
        );
    }

    #[test]
    fn lexer_handles_lifetimes_and_chars() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'y' }");
        assert_eq!(
            lexed.toks.iter().filter(|t| t.kind == Kind::Lifetime).count(),
            2
        );
        assert_eq!(lexed.toks.iter().filter(|t| t.kind == Kind::Char).count(), 1);
    }

    #[test]
    fn lexer_handles_raw_and_byte_strings() {
        let lexed = lex(r##"let a = r#"raw "quoted" body"#; let b = b"bytes"; let c = rng;"##);
        assert_eq!(lexed.toks.iter().filter(|t| t.kind == Kind::Str).count(), 2);
        assert!(lexed.toks.iter().any(|t| t.text == "rng"));
    }

    #[test]
    fn allow_comments_parse_multiple_rules() {
        let lexed = lex("x(); // tflint::allow(TF004, TF005) — invariant upheld by validate()\n");
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].rules, vec!["TF004", "TF005"]);
    }

    #[test]
    fn test_mask_covers_cfg_test_modules() {
        let src = "fn lib(x: Option<u8>) -> u8 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { y.unwrap(); }\n}\n";
        let diags = check_source("llc", "src/x.rs", src);
        assert_eq!(diags.len(), 1, "{}", render(&diags));
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[0].rule, "TF004");
    }
}
