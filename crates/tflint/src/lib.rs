//! tflint — domain-aware static analysis for the ThymesisFlow workspace.
//!
//! The simulator's credibility rests on determinism and unit-correct
//! arithmetic (950 ns flit RTT, credit-conserving LLC backpressure,
//! 12.5 GiB/s channel ceilings). tflint enforces the rules that keep
//! those properties from silently eroding:
//!
//! | rule  | checks                                                        |
//! |-------|---------------------------------------------------------------|
//! | TF001 | no wall-clock (`Instant`/`SystemTime`) in simulation crates   |
//! | TF002 | no entropy- or ad-hoc-seeded RNG outside `simkit::rng`        |
//! | TF003 | no bare `u64`/`f64` params with unit-implying names in public APIs (unit crates + `core::fabric`) |
//! | TF004 | no `unwrap()`/`expect()`/`panic!` in non-test datapath code (datapath crates + `core::fabric`) |
//! | TF005 | no truncating `as` casts on time/credit/byte values           |
//! | TF006 | no float `==`/`!=` in stats/bandwidth code                    |
//! | TF007 | no wall-clock reads (`Instant::now`/`SystemTime::now`/`UNIX_EPOCH`) in simulation crates, tests included |
//! | TF008 | no `unwrap()`/`expect()` in failure-recovery modules (chaos/recovery/retry files, any crate) |
//! | TF009 | no iteration over `HashMap`/`HashSet` in deterministic crates (keyed lookup stays allowed) |
//! | TF010 | no `static mut`/`thread_local!`/cell-based interior mutability in sim crates outside `simkit::{sweep, partition}` |
//! | TF011 | no `std::sync` primitives (`Mutex`/`RwLock`/atomics/...) outside `simkit::{sweep, partition}` |
//! | TF012 | no order-sensitive float accumulation over unordered collections |
//! | TF013 | no public fallible `&mut self` APIs returning bare `bool`/`Option<()>` where the crate has a typed error |
//! | TF014 | no `println!`/`eprintln!` (or `print!`/`eprint!`) in simulation crate library code |
//!
//! A finding is suppressed by a `// tflint::allow(TFnnn): reason`
//! comment on the same line or the line directly above; the reason is
//! mandatory. The `--audit-allows` mode (and the per-crate gates) turn
//! allow hygiene into findings of its own: **ALW001** an allow names a
//! rule it no longer suppresses (stale), **ALW002** an allow carries no
//! reason.
//!
//! # Two-pass architecture
//!
//! TF001–TF008 are per-file token-pattern rules. TF009–TF013 are
//! *workspace-aware*: a first pass lexes every file and builds a
//! lightweight item/import index per crate (mod/use/fn/struct/enum/
//! impl spans, `HashMap`/`HashSet`-typed field and binding names,
//! `use ... as` aliases of the hash containers, and the crate's typed
//! error types); a second pass runs the cross-file rules over each
//! file's tokens with the whole-crate index in scope. That is how an
//! iteration in `rack.rs` over a map *declared* in `engine.rs` is
//! caught without type inference — and why the index needs no `syn`
//! (the registry is unavailable; the hand-rolled lexer carries
//! line:column spans, which is all the rules need).
//!
//! Run it as `cargo run -p tflint -- check [--format json]
//! [--audit-allows]`, or let the per-crate [`gate!`] tests run it under
//! plain `cargo test`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::Path;

use serde::Value;

/// Rule IDs with one-line descriptions, for `--help`-style output.
pub const RULES: &[(&str, &str)] = &[
    ("TF001", "no wall-clock (std::time::Instant/SystemTime) in simulation crates"),
    ("TF002", "no entropy-seeded or ad-hoc-seeded RNG (thread_rng/from_entropy/OsRng/seed_from_u64) outside simkit::rng"),
    ("TF003", "no bare u64/f64 parameters with unit-implying names in public APIs"),
    ("TF004", "no unwrap()/expect()/panic! in non-test datapath code"),
    ("TF005", "no truncating `as` casts on time/credit/byte values"),
    ("TF006", "no float ==/!= comparisons in stats/bandwidth code"),
    ("TF007", "no wall-clock reads (Instant::now/SystemTime::now/UNIX_EPOCH) in simulation crates, tests included"),
    ("TF008", "no unwrap()/expect() in failure-recovery modules (chaos/recovery/retry files, any crate)"),
    ("TF009", "no iteration over HashMap/HashSet in deterministic crates (use BTreeMap/BTreeSet, an index-keyed Vec, or an explicit sort; keyed lookup stays allowed)"),
    ("TF010", "no static mut/thread_local!/RefCell-style interior mutability in sim crates outside simkit::{sweep, partition}"),
    ("TF011", "no std::sync primitives (Mutex/RwLock/Condvar/atomics/mpsc) outside simkit::{sweep, partition}"),
    ("TF012", "no order-sensitive float accumulation (sum/product/fold) over unordered hash collections"),
    ("TF013", "no public fallible &mut self API returning bare bool/Option<()> where the crate defines a typed error"),
    ("TF014", "no println!/eprintln!/print!/eprint! in simulation crate library code (examples and benches own the console; observations export through the telemetry registry or the journal)"),
];

/// Allow-audit rule IDs (reported by `--audit-allows` and the gates).
pub const AUDIT_RULES: &[(&str, &str)] = &[
    ("ALW001", "tflint::allow names a rule it no longer suppresses (stale allow)"),
    ("ALW002", "tflint::allow carries no reason after the rule list"),
];

/// Version of the JSON diagnostic schema emitted by [`render_json`].
/// Bump only on breaking shape changes; CI parses this output.
pub const JSON_SCHEMA_VERSION: u64 = 1;

/// One lint finding, anchored to a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule ID (`TF001`..`TF014`, or `ALW001`/`ALW002` from the audit).
    pub rule: &'static str,
    /// Path of the offending file, as given to the checker.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}:{}: {}",
            self.rule, self.file, self.line, self.col, self.message
        )
    }
}

impl Diagnostic {
    /// The stable [`Value`]-tree shape of one diagnostic: a map with
    /// exactly the keys `rule`, `file`, `line`, `col`, `message`.
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("rule".into(), Value::Str(self.rule.into())),
            ("file".into(), Value::Str(self.file.clone())),
            ("line".into(), Value::UInt(u64::from(self.line))),
            ("col".into(), Value::UInt(u64::from(self.col))),
            ("message".into(), Value::Str(self.message.clone())),
        ])
    }
}

/// Renders diagnostics one per line (empty string when clean).
pub fn render(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(Diagnostic::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}

/// The machine-readable report as a [`Value`] tree. Top-level keys are
/// schema-stable: `schema`, `count`, `diagnostics`.
pub fn diagnostics_value(diags: &[Diagnostic]) -> Value {
    Value::Map(vec![
        ("schema".into(), Value::UInt(JSON_SCHEMA_VERSION)),
        ("count".into(), Value::UInt(diags.len() as u64)),
        (
            "diagnostics".into(),
            Value::Seq(diags.iter().map(Diagnostic::to_value).collect()),
        ),
    ])
}

/// Renders the report as one JSON document (for `--format json`).
pub fn render_json(diags: &[Diagnostic]) -> String {
    // The vendored writer is infallible for a `Value` tree.
    serde_json::to_string(&diagnostics_value(diags)).unwrap_or_else(|_| "{}".to_string())
}

// ------------------------------------------------------------------ lexer

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Ident,
    Punct,
    Str,
    Char,
    Int,
    Float,
    Lifetime,
}

#[derive(Debug, Clone)]
struct Tok {
    kind: Kind,
    text: String,
    line: u32,
    col: u32,
}

/// A `// tflint::allow(RULE, ...): reason` comment: the rules it names,
/// the line it sits on, and the reason text after the rule list. It
/// suppresses findings on its own line and the next.
#[derive(Debug, Clone)]
struct Allow {
    line: u32,
    col: u32,
    rules: Vec<String>,
    reason: Option<String>,
}

struct Lexed {
    toks: Vec<Tok>,
    allows: Vec<Allow>,
}

const TWO_CHAR_OPS: &[&str] = &[
    "==", "!=", "<=", ">=", "=>", "->", "&&", "||", "..", "::", "<<", ">>",
];

fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut allows = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! advance {
        ($n:expr) => {{
            let n = $n;
            for _ in 0..n {
                if bytes.get(i) == Some(&b'\n') {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
                i += 1;
            }
        }};
    }

    while i < bytes.len() {
        let b = bytes[i];
        let (tline, tcol) = (line, col);

        // Whitespace.
        if b.is_ascii_whitespace() {
            advance!(1);
            continue;
        }

        // Line comments (also the allow channel).
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            let end = src[i..].find('\n').map_or(bytes.len(), |n| i + n);
            let comment = &src[i..end];
            if let Some(a) = parse_allow(comment, tline, tcol) {
                allows.push(a);
            }
            advance!(end - i);
            continue;
        }

        // Block comments (nested).
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 1;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            advance!(j - i);
            continue;
        }

        // Raw strings and byte strings: r"..", r#".."#, br"..", b"..".
        if b == b'r' || b == b'b' {
            if let Some(len) = raw_string_len(&src[i..]) {
                toks.push(Tok {
                    kind: Kind::Str,
                    text: String::new(),
                    line: tline,
                    col: tcol,
                });
                advance!(len);
                continue;
            }
        }

        // Plain strings.
        if b == b'"' {
            let mut j = i + 1;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            toks.push(Tok {
                kind: Kind::Str,
                text: String::new(),
                line: tline,
                col: tcol,
            });
            advance!(j - i);
            continue;
        }

        // Lifetimes vs char literals.
        if b == b'\'' {
            let next = bytes.get(i + 1).copied().unwrap_or(0);
            let after = bytes.get(i + 2).copied().unwrap_or(0);
            if (next.is_ascii_alphabetic() || next == b'_') && after != b'\'' {
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                toks.push(Tok {
                    kind: Kind::Lifetime,
                    text: src[i..j].to_string(),
                    line: tline,
                    col: tcol,
                });
                advance!(j - i);
            } else {
                let mut j = i + 1;
                while j < bytes.len() {
                    match bytes[j] {
                        b'\\' => j += 2,
                        b'\'' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                toks.push(Tok {
                    kind: Kind::Char,
                    text: String::new(),
                    line: tline,
                    col: tcol,
                });
                advance!(j - i);
            }
            continue;
        }

        // Numbers. `1..120` stops before the `..`; `0.5` and `1e12` are
        // floats; `0xAE` stays an integer despite the hex `E`.
        if b.is_ascii_digit() {
            let mut j = i;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            if bytes.get(j) == Some(&b'.') && bytes.get(j + 1).is_some_and(u8::is_ascii_digit) {
                j += 1;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
            }
            let text = &src[i..j];
            let is_float = !text.starts_with("0x")
                && !text.starts_with("0b")
                && !text.starts_with("0o")
                && (text.contains('.') || text.contains(['e', 'E']));
            toks.push(Tok {
                kind: if is_float { Kind::Float } else { Kind::Int },
                text: text.to_string(),
                line: tline,
                col: tcol,
            });
            advance!(j - i);
            continue;
        }

        // Identifiers and keywords.
        if b.is_ascii_alphabetic() || b == b'_' {
            let mut j = i;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            toks.push(Tok {
                kind: Kind::Ident,
                text: src[i..j].to_string(),
                line: tline,
                col: tcol,
            });
            advance!(j - i);
            continue;
        }

        // Multi-char operators, longest first.
        if src[i..].starts_with("..=") {
            toks.push(Tok {
                kind: Kind::Punct,
                text: "..=".into(),
                line: tline,
                col: tcol,
            });
            advance!(3);
            continue;
        }
        if let Some(op) = TWO_CHAR_OPS.iter().find(|op| src[i..].starts_with(**op)) {
            toks.push(Tok {
                kind: Kind::Punct,
                text: (*op).to_string(),
                line: tline,
                col: tcol,
            });
            advance!(2);
            continue;
        }

        toks.push(Tok {
            kind: Kind::Punct,
            text: (b as char).to_string(),
            line: tline,
            col: tcol,
        });
        advance!(1);
    }

    Lexed { toks, allows }
}

/// Length of a raw/byte string literal starting at `s`, if one starts
/// here: `r"…"`, `r#"…"#`, `br"…"`, or `b"…"`.
fn raw_string_len(s: &str) -> Option<usize> {
    let after_b = s.strip_prefix('b');
    let rest = after_b.unwrap_or(s);
    let after_r = rest.strip_prefix('r');
    let had_r = after_r.is_some();
    let rest = after_r.unwrap_or(rest);
    let hashes = rest.bytes().take_while(|&c| c == b'#').count();
    let rest = &rest[hashes..];
    if !rest.starts_with('"') {
        return None;
    }
    if !had_r && (hashes > 0 || after_b.is_none()) {
        // `b#...` is not a literal, and a bare `"` is handled elsewhere.
        return None;
    }
    let prefix_len = s.len() - rest.len() + 1;
    let body = &rest[1..];
    if had_r {
        let closer = format!("\"{}", "#".repeat(hashes));
        let end = body.find(&closer)?;
        Some(prefix_len + end + closer.len())
    } else {
        // b"...": escapes apply.
        let bytes = body.as_bytes();
        let mut j = 0;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'"' => return Some(prefix_len + j + 1),
                _ => j += 1,
            }
        }
        None
    }
}

fn parse_allow(comment: &str, line: u32, col: u32) -> Option<Allow> {
    // The marker must open the comment (`// tflint::allow(...)`), so
    // prose that merely *mentions* the syntax is not an allow.
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim_start();
    let rest = body.strip_prefix("tflint::allow(")?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    let trailer = rest[close + 1..]
        .trim_start_matches([':', '-', '—', ' ', '\t'])
        .trim();
    let reason = if trailer.is_empty() {
        None
    } else {
        Some(trailer.to_string())
    };
    Some(Allow {
        line,
        col,
        rules,
        reason,
    })
}

// --------------------------------------------------------- test-code map

/// Marks the token ranges belonging to `#[cfg(test)]` / `#[test]` items
/// (the attribute, the item header, and its braced body).
fn test_code_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).is_some_and(|t| t.text == "[") {
            // Collect the attribute's tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1;
            let mut saw_test = false;
            let mut saw_cfg = false;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "cfg" => saw_cfg = true,
                    "test" => saw_test = true,
                    _ => {}
                }
                j += 1;
            }
            // `#[test]` alone, or `test` appearing inside a `#[cfg(...)]`
            // predicate (covers `#[cfg(test)]` and `#[cfg(all(test, ..))]`).
            let is_bare_test = saw_test && !saw_cfg && j == i + 4;
            if saw_test && (saw_cfg || is_bare_test) {
                // Skip any further attributes between this one and the item.
                let mut k = j;
                while k + 1 < toks.len() && toks[k].text == "#" && toks[k + 1].text == "[" {
                    let mut d = 1;
                    k += 2;
                    while k < toks.len() && d > 0 {
                        match toks[k].text.as_str() {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                // Find the item's body (first top-level `{`) or `;`.
                let mut d = 0i32;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "(" | "[" => d += 1,
                        ")" | "]" => d -= 1,
                        ";" if d == 0 => {
                            k += 1;
                            break;
                        }
                        "{" if d == 0 => {
                            let mut bd = 1;
                            k += 1;
                            while k < toks.len() && bd > 0 {
                                match toks[k].text.as_str() {
                                    "{" => bd += 1,
                                    "}" => bd -= 1,
                                    _ => {}
                                }
                                k += 1;
                            }
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                for m in mask.iter_mut().take(k).skip(i) {
                    *m = true;
                }
                i = k;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

// -------------------------------------------------------- workspace index

/// The kind of a top-level-ish item recorded by the index pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name` (inline or file).
    Mod,
    /// `use path::to::thing [as alias];` — `name` is the full path text.
    Use,
    /// `fn name`.
    Fn,
    /// `struct Name`.
    Struct,
    /// `enum Name`.
    Enum,
    /// `trait Name`.
    Trait,
    /// `impl [Trait for] Type` — `name` is the type text.
    Impl,
}

/// One indexed item: enough span information to anchor cross-file
/// rules without a full parse.
#[derive(Debug, Clone)]
pub struct Item {
    /// What kind of item this is.
    pub kind: ItemKind,
    /// The item's name (for `Use`, the imported path).
    pub name: String,
    /// 1-based line of the introducing keyword.
    pub line: u32,
    /// Whether the item is `pub` (never true for `Impl`).
    pub is_pub: bool,
}

/// Per-crate facts derived from pass one, consumed by the cross-file
/// rules in pass two.
#[derive(Debug, Default, Clone)]
struct CrateIndex {
    /// Field/binding names declared with a `HashMap`/`HashSet` type
    /// anywhere in the crate (TF009/TF012 receiver set).
    hash_named: BTreeSet<String>,
    /// Local names the hash containers are visible under: `HashMap`,
    /// `HashSet`, plus any `use ... as Alias` renames.
    hash_types: BTreeSet<String>,
    /// Public typed error types (`pub struct/enum *Error`) the crate
    /// defines (TF013 only fires where one exists).
    error_types: BTreeSet<String>,
}

/// The cross-crate index built by pass one: per crate, the item list
/// per file and the derived rule facts.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    crates: BTreeMap<String, CrateIndex>,
    /// Items per (crate, file), in source order.
    items: BTreeMap<(String, String), Vec<Item>>,
}

impl WorkspaceIndex {
    /// The indexed items of one file, if it was scanned.
    pub fn items(&self, crate_name: &str, rel_path: &str) -> Option<&[Item]> {
        self.items
            .get(&(crate_name.to_string(), rel_path.to_string()))
            .map(Vec::as_slice)
    }

    /// Names known to be `HashMap`/`HashSet`-typed anywhere in `crate_name`.
    pub fn hash_named(&self, crate_name: &str) -> impl Iterator<Item = &str> {
        self.crates
            .get(crate_name)
            .into_iter()
            .flat_map(|c| c.hash_named.iter().map(String::as_str))
    }

    /// Typed error types `crate_name` defines.
    pub fn error_types(&self, crate_name: &str) -> impl Iterator<Item = &str> {
        self.crates
            .get(crate_name)
            .into_iter()
            .flat_map(|c| c.error_types.iter().map(String::as_str))
    }

    fn crate_index(&self, crate_name: &str) -> Option<&CrateIndex> {
        self.crates.get(crate_name)
    }
}

/// One lexed file staged between the index pass and the rule pass.
struct Unit {
    crate_name: String,
    rel_path: String,
    toks: Vec<Tok>,
    allows: Vec<Allow>,
    test_mask: Vec<bool>,
}

impl Unit {
    fn new(crate_name: &str, rel_path: &str, source: &str) -> Unit {
        let Lexed { toks, allows } = lex(source);
        let test_mask = test_code_mask(&toks);
        Unit {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            toks,
            allows,
            test_mask,
        }
    }
}

/// Pass one: scan each unit's tokens for items and the derived facts.
fn build_index(units: &[Unit]) -> WorkspaceIndex {
    let mut idx = WorkspaceIndex::default();
    for unit in units {
        let entry = idx.crates.entry(unit.crate_name.clone()).or_default();
        entry.hash_types.insert("HashMap".to_string());
        entry.hash_types.insert("HashSet".to_string());
        let items = scan_items(&unit.toks);
        // `use std::collections::HashMap as Map` makes `Map` a hash
        // container name inside this crate.
        for item in &items {
            if item.kind == ItemKind::Use {
                if let Some((path, alias)) = item.name.rsplit_once(" as ") {
                    if path.ends_with("HashMap") || path.ends_with("HashSet") {
                        entry.hash_types.insert(alias.trim().to_string());
                    }
                }
            }
            if matches!(item.kind, ItemKind::Struct | ItemKind::Enum)
                && item.is_pub
                && item.name.ends_with("Error")
            {
                entry.error_types.insert(item.name.clone());
            }
        }
        idx.items
            .insert((unit.crate_name.clone(), unit.rel_path.clone()), items);
    }
    // Hash-typed names need the alias set complete first.
    for unit in units {
        let hash_types = idx
            .crates
            .get(&unit.crate_name)
            .map(|c| c.hash_types.clone())
            .unwrap_or_default();
        let named = scan_hash_named(&unit.toks, &hash_types);
        if let Some(entry) = idx.crates.get_mut(&unit.crate_name) {
            entry.hash_named.extend(named);
        }
    }
    idx
}

/// Collects mod/use/fn/struct/enum/trait/impl items from a token stream.
fn scan_items(toks: &[Tok]) -> Vec<Item> {
    let mut items = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind != Kind::Ident {
            i += 1;
            continue;
        }
        let is_pub = i > 0
            && (toks[i - 1].text == "pub"
                || (toks[i - 1].text == ")" && pub_paren_before(toks, i)));
        let kind = match t.text.as_str() {
            "mod" => Some(ItemKind::Mod),
            "use" => Some(ItemKind::Use),
            "fn" => Some(ItemKind::Fn),
            "struct" => Some(ItemKind::Struct),
            "enum" => Some(ItemKind::Enum),
            "trait" => Some(ItemKind::Trait),
            "impl" => Some(ItemKind::Impl),
            _ => None,
        };
        let Some(kind) = kind else {
            i += 1;
            continue;
        };
        match kind {
            ItemKind::Use => {
                // Join the path up to `;` (or a brace group) into one string.
                let mut j = i + 1;
                let mut path = String::new();
                while j < toks.len() && toks[j].text != ";" && toks[j].text != "{" {
                    if toks[j].text == "as" {
                        path.push_str(" as ");
                    } else {
                        path.push_str(&toks[j].text);
                    }
                    j += 1;
                }
                items.push(Item {
                    kind,
                    name: path,
                    line: t.line,
                    is_pub,
                });
                i = j;
            }
            ItemKind::Impl => {
                // `impl<T> Trait for Type {` / `impl Type {` — record the
                // text between `impl` and the body brace.
                let mut j = i + 1;
                let mut name = String::new();
                while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
                    if !name.is_empty() {
                        name.push(' ');
                    }
                    name.push_str(&toks[j].text);
                    j += 1;
                }
                items.push(Item {
                    kind,
                    name,
                    line: t.line,
                    is_pub: false,
                });
                i = j;
            }
            _ => {
                if let Some(name_tok) = toks.get(i + 1) {
                    if name_tok.kind == Kind::Ident {
                        items.push(Item {
                            kind,
                            name: name_tok.text.clone(),
                            line: t.line,
                            is_pub,
                        });
                    }
                }
                i += 1;
            }
        }
        i += 1;
    }
    items
}

/// Whether the `)` at `toks[i-1]` closes a `pub(...)` qualifier.
fn pub_paren_before(toks: &[Tok], i: usize) -> bool {
    let mut j = i - 1;
    let mut depth = 0;
    while j > 0 {
        match toks[j].text.as_str() {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth == 0 {
                    return j > 0 && toks[j - 1].text == "pub";
                }
            }
            _ => {}
        }
        j -= 1;
    }
    false
}

/// Field/binding names with a hash-container type: `name: HashMap<..>`
/// (fields, params, typed lets) and `let name = HashMap::new()`.
fn scan_hash_named(toks: &[Tok], hash_types: &BTreeSet<String>) -> BTreeSet<String> {
    let mut named = BTreeSet::new();
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != Kind::Ident || !hash_types.contains(&tok.text) {
            continue;
        }
        // `name : [path ::]* Hash… <` — walk back over the path.
        let mut j = i;
        while j >= 2 && toks[j - 1].text == "::" {
            j -= 2;
        }
        if j >= 2 && toks[j - 1].text == ":" && toks[j - 2].kind == Kind::Ident {
            named.insert(toks[j - 2].text.clone());
            continue;
        }
        // `let [mut] name = Hash… :: new|with_capacity|from (`.
        if j >= 2 && toks[j - 1].text == "=" && toks[j - 2].kind == Kind::Ident {
            let target = &toks[j - 2];
            let let_pos = j.checked_sub(3).and_then(|k| toks.get(k));
            let is_let = let_pos.is_some_and(|t| t.text == "let" || t.text == "mut");
            let constructed = toks.get(i + 1).is_some_and(|t| t.text == "::");
            if is_let && constructed {
                named.insert(target.text.clone());
            }
        }
    }
    named
}

// ------------------------------------------------------------ rule scopes

/// Crates whose simulated time must stay virtual (TF001) and whose
/// state must be deterministically ordered / free of hidden shared
/// mutability (TF009–TF013).
const SIM_CRATES: &[&str] = &[
    "simkit",
    "netsim",
    "llc",
    "opencapi",
    "rmmu",
    "routing",
    "hostsim",
    "ctrlplane",
    "core",
    "workloads",
    "dcsim",
    "thymesisflow",
];

/// Crates whose public APIs must use unit newtypes (TF003).
const UNIT_API_CRATES: &[&str] = &["simkit", "llc", "netsim", "routing"];

/// Datapath crates where panics are forbidden outside tests (TF004).
const DATAPATH_CRATES: &[&str] = &["llc", "routing", "rmmu", "opencapi", "netsim"];

/// The core crate's fabric module carries the flit-level datapath after
/// the component/port refactor, so TF003 and TF004 extend to it even
/// though `core` as a whole (rack orchestration, models) stays out of
/// scope.
fn fabric_scoped(crate_name: &str, rel_path: &str) -> bool {
    crate_name == "core" && rel_path.contains("fabric")
}

/// Failure-recovery modules where panics are forbidden regardless of
/// crate (TF008). A recovery path that panics converts the typed fault
/// it existed to deliver into silence — the exact failure mode the
/// chaos harness exists to rule out. Scoped by file name so the rule
/// follows the code wherever recovery machinery lives.
fn recovery_scoped(rel_path: &str) -> bool {
    let file = rel_path.rsplit('/').next().unwrap_or(rel_path);
    file.contains("chaos") || file.contains("recovery") || file.contains("retry")
}

/// The modules blessed to hold interior mutability and `std::sync`
/// primitives (TF010/TF011): the parallel sweep harness and the
/// conservative partition runner. Both prove 1-vs-N-worker bit-equality
/// and therefore own all cross-thread machinery; everything else must
/// route parallelism through them.
fn sync_blessed(crate_name: &str, rel_path: &str) -> bool {
    crate_name == "simkit"
        && (rel_path.ends_with("sweep.rs") || rel_path.ends_with("partition.rs"))
}

/// Crates with timing/credit arithmetic where `as` casts are audited (TF005).
const CAST_CRATES: &[&str] = &["llc", "simkit"];

/// Crates with stats/bandwidth float math (TF006). TF012 needs no such
/// list: it anchors on TF009 iteration sites, which already carry the
/// sim-crate scope.
const FLOAT_CMP_CRATES: &[&str] = &["simkit", "netsim", "dcsim", "workloads", "bench"];

fn in_scope(list: &[&str], crate_name: &str) -> bool {
    list.contains(&crate_name)
}

/// Methods whose call visits a collection in storage order (TF009).
/// Keyed access (`get`/`insert`/`remove`/`entry`/`contains_key`) is
/// deliberately absent: O(1) lookup is the reason HashMap would be
/// chosen, and it is order-free.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// `std::sync` primitive type/function names (TF011). `Arc` is absent
/// on purpose: shared immutable payloads (LLC frames) are deterministic;
/// it is synchronization that smuggles in scheduling order.
const SYNC_PRIMITIVES: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "Once",
    "OnceLock",
    "LazyLock",
    "mpsc",
];

/// Interior-mutability cells (TF010). `static mut` and `thread_local!`
/// are matched structurally in the rule itself.
const CELL_TYPES: &[&str] = &["RefCell", "Cell", "UnsafeCell", "OnceCell", "LazyCell"];

/// Query-style name prefixes exempt from TF013: a `bool` from these is
/// an answer, not a swallowed error. `chance`/`flip`/`sample` cover
/// random samplers (a Bernoulli draw is data, not a success flag).
const QUERY_PREFIXES: &[&str] = &[
    "is_", "has_", "contains", "can_", "should_", "needs_", "was_", "matches", "chance", "flip",
    "sample",
];

// ----------------------------------------------------------------- rules

/// Lints one source file as it would appear in crate `crate_name` at
/// `rel_path`. This is the fixture-test entry point: rules are scoped by
/// crate name exactly as in a workspace run, and the cross-file index is
/// built from this single file.
pub fn check_source(crate_name: &str, rel_path: &str, source: &str) -> Vec<Diagnostic> {
    check_sources(&[(crate_name, rel_path, source)])
}

/// Lints a set of files with a shared workspace index — the multi-file
/// fixture entry point. A `HashMap` field declared in one file is
/// flagged when iterated from another file of the same crate.
pub fn check_sources(files: &[(&str, &str, &str)]) -> Vec<Diagnostic> {
    let units: Vec<Unit> = files
        .iter()
        .map(|(c, p, s)| Unit::new(c, p, s))
        .collect();
    let (diags, _) = run_units(&units);
    diags
}

/// Audits the allow comments of a set of files: stale allows (naming a
/// rule that suppresses nothing) and reasonless allows become ALW00x
/// diagnostics.
pub fn audit_sources(files: &[(&str, &str, &str)]) -> Vec<Diagnostic> {
    let units: Vec<Unit> = files
        .iter()
        .map(|(c, p, s)| Unit::new(c, p, s))
        .collect();
    let (_, audit) = run_units(&units);
    audit
}

/// Builds the [`WorkspaceIndex`] for a set of files without running any
/// rules — the index-inspection entry point for tests and tooling.
pub fn index_sources(files: &[(&str, &str, &str)]) -> WorkspaceIndex {
    let units: Vec<Unit> = files
        .iter()
        .map(|(c, p, s)| Unit::new(c, p, s))
        .collect();
    build_index(&units)
}

/// Two-pass driver: index, per-unit rules, allow application, audit.
/// Returns (rule diagnostics after allows, allow-audit diagnostics).
fn run_units(units: &[Unit]) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    let idx = build_index(units);
    let mut kept = Vec::new();
    let mut audit = Vec::new();
    for unit in units {
        let raw = check_unit(unit, &idx);
        // Track, per allow comment and per named rule, whether it
        // suppressed at least one raw finding.
        let mut used = vec![vec![false; 0]; unit.allows.len()];
        for (ai, a) in unit.allows.iter().enumerate() {
            used[ai] = vec![false; a.rules.len()];
        }
        for d in raw {
            let mut suppressed = false;
            for (ai, a) in unit.allows.iter().enumerate() {
                if a.line == d.line || a.line + 1 == d.line {
                    for (ri, r) in a.rules.iter().enumerate() {
                        if r == d.rule {
                            used[ai][ri] = true;
                            suppressed = true;
                        }
                    }
                }
            }
            if !suppressed {
                kept.push(d);
            }
        }
        for (ai, a) in unit.allows.iter().enumerate() {
            for (ri, r) in a.rules.iter().enumerate() {
                if !used[ai][ri] {
                    audit.push(Diagnostic {
                        rule: "ALW001",
                        file: unit.rel_path.clone(),
                        line: a.line,
                        col: a.col,
                        message: format!(
                            "stale allow: `{r}` no longer fires on line {} or {}; delete the allow (or this entry from its rule list)",
                            a.line,
                            a.line + 1
                        ),
                    });
                }
            }
            if a.reason.is_none() {
                audit.push(Diagnostic {
                    rule: "ALW002",
                    file: unit.rel_path.clone(),
                    line: a.line,
                    col: a.col,
                    message: format!(
                        "allow for {} carries no reason; append `: why this is sound`",
                        a.rules.join(", ")
                    ),
                });
            }
        }
    }
    kept.sort_by(|a, b| (a.file.clone(), a.line, a.col, a.rule).cmp(&(b.file.clone(), b.line, b.col, b.rule)));
    audit.sort_by(|a, b| (a.file.clone(), a.line, a.col, a.rule).cmp(&(b.file.clone(), b.line, b.col, b.rule)));
    (kept, audit)
}

/// Pass two for one file: every rule, no allow filtering (the caller
/// applies allows so it can track staleness).
fn check_unit(unit: &Unit, idx: &WorkspaceIndex) -> Vec<Diagnostic> {
    let crate_name = unit.crate_name.as_str();
    let rel_path = unit.rel_path.as_str();
    let toks = &unit.toks;
    let test_mask = &unit.test_mask;
    let mut diags = Vec::new();

    let push = |diags: &mut Vec<Diagnostic>, rule: &'static str, tok: &Tok, message: String| {
        diags.push(Diagnostic {
            rule,
            file: rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
        });
    };

    let is_rng_home = crate_name == "simkit" && rel_path.ends_with("src/rng.rs");
    let is_sync_home = sync_blessed(crate_name, rel_path);
    let crate_idx = idx.crate_index(crate_name);
    let empty_hash_named = BTreeSet::new();
    let hash_named = crate_idx.map_or(&empty_hash_named, |c| &c.hash_named);
    let empty_error_types = BTreeSet::new();
    let error_types = crate_idx.map_or(&empty_error_types, |c| &c.error_types);

    for (i, tok) in toks.iter().enumerate() {
        let in_test = test_mask[i];

        // TF001: wall-clock types.
        if in_scope(SIM_CRATES, crate_name)
            && !in_test
            && tok.kind == Kind::Ident
            && (tok.text == "Instant" || tok.text == "SystemTime")
        {
            push(
                &mut diags,
                "TF001",
                tok,
                format!(
                    "wall-clock type `{}` breaks simulation determinism; model time with `simkit::time::SimTime`",
                    tok.text
                ),
            );
        }

        // TF002: raw RNG construction outside simkit::rng. Entropy
        // sources break reproducibility outright; ad-hoc `seed_from_u64`
        // calls create streams the sweep harness cannot track, so both
        // route through `DetRng` (`split_stream` for per-point streams,
        // `fork` for per-component streams).
        if !is_rng_home
            && tok.kind == Kind::Ident
            && matches!(
                tok.text.as_str(),
                "thread_rng" | "from_entropy" | "OsRng" | "seed_from_u64"
            )
        {
            let message = if tok.text == "seed_from_u64" {
                "ad-hoc RNG seeding bypasses deterministic stream splitting; use `DetRng::split_stream(master_seed, stream)` (or `DetRng::fork`) instead".to_string()
            } else {
                format!(
                    "entropy-seeded RNG `{}` breaks reproducibility; derive a seeded stream from `simkit::rng::DetRng`",
                    tok.text
                )
            };
            push(&mut diags, "TF002", tok, message);
        }

        // TF004: panics in datapath library code.
        if (in_scope(DATAPATH_CRATES, crate_name) || fabric_scoped(crate_name, rel_path))
            && !in_test
            && tok.kind == Kind::Ident
        {
            let prev_dot = i > 0 && toks[i - 1].text == ".";
            let next = toks.get(i + 1).map(|t| t.text.as_str());
            if (tok.text == "unwrap" || tok.text == "expect") && prev_dot && next == Some("(") {
                push(
                    &mut diags,
                    "TF004",
                    tok,
                    format!(
                        "`.{}()` can panic mid-datapath; return a typed error (`LlcError`/`RouteError`) or justify with tflint::allow",
                        tok.text
                    ),
                );
            }
            if tok.text == "panic" && next == Some("!") {
                push(
                    &mut diags,
                    "TF004",
                    tok,
                    "`panic!` in datapath code aborts the whole simulation; return a typed error or justify with tflint::allow"
                        .to_string(),
                );
            }
        }

        // TF008: panics in failure-recovery modules. TF004 covers the
        // datapath crates and core::fabric; this extends the no-panic
        // rule to chaos/recovery/retry files in every other crate.
        if recovery_scoped(rel_path)
            && !(in_scope(DATAPATH_CRATES, crate_name) || fabric_scoped(crate_name, rel_path))
            && !in_test
            && tok.kind == Kind::Ident
            && (tok.text == "unwrap" || tok.text == "expect")
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
        {
            push(
                &mut diags,
                "TF008",
                tok,
                format!(
                    "`.{}()` in recovery code turns the typed fault it should deliver into a panic; propagate the error or justify with tflint::allow",
                    tok.text
                ),
            );
        }

        // TF005: truncating casts on unit-carrying values.
        if in_scope(CAST_CRATES, crate_name)
            && !in_test
            && tok.kind == Kind::Ident
            && tok.text == "as"
        {
            if let Some(target) = toks.get(i + 1) {
                let narrow = matches!(
                    target.text.as_str(),
                    "u8" | "u16" | "u32" | "i8" | "i16" | "i32"
                );
                let wide_int = matches!(
                    target.text.as_str(),
                    "u64" | "i64" | "usize" | "isize" | "u128" | "i128"
                );
                if narrow {
                    push(
                        &mut diags,
                        "TF005",
                        tok,
                        format!(
                            "narrowing `as {}` silently truncates; use `try_from` (or a widening `from`) so overflow is a checked error",
                            target.text
                        ),
                    );
                } else if wide_int && cast_source_is_unit_like(toks, i) {
                    push(
                        &mut diags,
                        "TF005",
                        tok,
                        format!(
                            "`as {}` on a time/credit/byte expression truncates toward zero; use a checked conversion helper",
                            target.text
                        ),
                    );
                }
            }
        }

        // TF007: wall-clock *reads*. TF001 bans the types in library
        // code; actual clock reads are banned even inside test code,
        // because tests pin deterministic-replay trajectories and a
        // wall-clock read invalidates the comparison. Telemetry and
        // span tracing must run off `SimTime` alone.
        if in_scope(SIM_CRATES, crate_name) && tok.kind == Kind::Ident {
            let clock_read = (tok.text == "Instant" || tok.text == "SystemTime")
                && toks.get(i + 1).is_some_and(|t| t.text == "::")
                && toks.get(i + 2).is_some_and(|t| t.text == "now");
            if clock_read || tok.text == "UNIX_EPOCH" {
                push(
                    &mut diags,
                    "TF007",
                    tok,
                    format!(
                        "wall-clock read `{}` breaks deterministic replay (even in tests); stamp with the event queue's `SimTime` instead",
                        if tok.text == "UNIX_EPOCH" {
                            "UNIX_EPOCH".to_string()
                        } else {
                            format!("{}::now", tok.text)
                        }
                    ),
                );
            }
        }

        // TF014: console writes in simulation library code. `src/` of a
        // sim crate is headless: anything worth reporting flows through
        // the telemetry registry, the congestion report, or the causal
        // journal, where it stays queryable and diffable. Examples and
        // benches (never linted here) own stdout.
        if in_scope(SIM_CRATES, crate_name)
            && !in_test
            && tok.kind == Kind::Ident
            && matches!(
                tok.text.as_str(),
                "println" | "eprintln" | "print" | "eprint"
            )
            && toks.get(i + 1).is_some_and(|t| t.text == "!")
        {
            push(
                &mut diags,
                "TF014",
                tok,
                format!(
                    "`{}!` writes to the console from simulation library code; record through the telemetry registry or the causal journal instead (examples and benches own stdout)",
                    tok.text
                ),
            );
        }

        // TF006: float equality.
        if in_scope(FLOAT_CMP_CRATES, crate_name)
            && !in_test
            && tok.kind == Kind::Punct
            && (tok.text == "==" || tok.text == "!=")
        {
            let float_neighbor = (i > 0 && toks[i - 1].kind == Kind::Float)
                || toks.get(i + 1).is_some_and(|t| t.kind == Kind::Float);
            if float_neighbor {
                push(
                    &mut diags,
                    "TF006",
                    tok,
                    format!(
                        "float `{}` is exact-bit comparison; compare against an epsilon or restructure the predicate",
                        tok.text
                    ),
                );
            }
        }

        // TF009/TF012: iteration over hash-ordered state. The receiver
        // set comes from the whole-crate index, so a map declared in
        // another file still trips the rule here.
        if in_scope(SIM_CRATES, crate_name)
            && !in_test
            && tok.kind == Kind::Ident
            && hash_named.contains(&tok.text)
        {
            let method_call = toks.get(i + 1).is_some_and(|t| t.text == ".")
                && toks
                    .get(i + 2)
                    .is_some_and(|t| ITER_METHODS.contains(&t.text.as_str()))
                && toks.get(i + 3).is_some_and(|t| t.text == "(");
            let for_loop_over = toks.get(i + 1).is_some_and(|t| t.text == "{")
                && for_in_before(toks, i);
            if method_call || for_loop_over {
                let how = if method_call {
                    format!("`.{}()`", toks[i + 2].text)
                } else {
                    "`for … in`".to_string()
                };
                push(
                    &mut diags,
                    "TF009",
                    tok,
                    format!(
                        "{how} over hash-ordered `{}` visits entries in nondeterministic order; use `BTreeMap`/`BTreeSet`, an index-keyed `Vec`, or collect-and-sort (keyed lookup stays allowed)",
                        tok.text
                    ),
                );
                if float_accumulation_after(toks, i) {
                    push(
                        &mut diags,
                        "TF012",
                        tok,
                        format!(
                            "float accumulation over hash-ordered `{}` re-associates rounding differently on every run; iterate a `BTreeMap`/sorted `Vec` (or sum a sorted copy)",
                            tok.text
                        ),
                    );
                }
            }
        }

        // TF010: interior mutability outside the blessed sweep harness.
        // Hidden cells turn "&self is read-only" into a lie, which is
        // exactly what the parallel engine's partitioning proof leans on.
        if in_scope(SIM_CRATES, crate_name) && !is_sync_home && !in_test && tok.kind == Kind::Ident
        {
            let static_mut = tok.text == "static"
                && toks.get(i + 1).is_some_and(|t| t.text == "mut");
            let thread_local =
                tok.text == "thread_local" && toks.get(i + 1).is_some_and(|t| t.text == "!");
            let cell = CELL_TYPES.contains(&tok.text.as_str());
            if static_mut || thread_local || cell {
                let what = if static_mut {
                    "`static mut`".to_string()
                } else if thread_local {
                    "`thread_local!`".to_string()
                } else {
                    format!("`{}`", tok.text)
                };
                push(
                    &mut diags,
                    "TF010",
                    tok,
                    format!(
                        "{what} hides mutable state from the component graph; thread state through `&mut self` (only `simkit::sweep` and `simkit::partition` are blessed to hold it)"
                    ),
                );
            }
        }

        // TF011: std::sync primitives outside the sweep harness. One
        // sanctioned parallel boundary exists; a stray Mutex anywhere
        // else means event order can depend on lock acquisition order.
        if in_scope(SIM_CRATES, crate_name)
            && !is_sync_home
            && !in_test
            && tok.kind == Kind::Ident
            && (SYNC_PRIMITIVES.contains(&tok.text.as_str()) || tok.text.starts_with("Atomic"))
        {
            push(
                &mut diags,
                "TF011",
                tok,
                format!(
                    "`{}` outside `simkit::sweep`/`simkit::partition` lets scheduling order leak into simulation state; route parallelism through the sweep harness or the partition runner",
                    tok.text
                ),
            );
        }
    }

    // TF003: bare u64/f64 params with unit-implying names in public APIs.
    if in_scope(UNIT_API_CRATES, crate_name) || fabric_scoped(crate_name, rel_path) {
        check_tf003(toks, test_mask, rel_path, &mut diags);
    }

    // TF013: public fallible APIs that swallow the error dimension.
    if in_scope(SIM_CRATES, crate_name) && !error_types.is_empty() {
        check_tf013(toks, test_mask, rel_path, error_types, &mut diags);
    }

    diags.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    diags
}

/// Whether token `i` sits in `for … in <expr>` position: scanning back,
/// we meet `in` (then eventually `for`) before any `;`, `{` or `}`.
fn for_in_before(toks: &[Tok], i: usize) -> bool {
    let start = i.saturating_sub(12);
    for t in toks[start..i].iter().rev() {
        match t.text.as_str() {
            "in" => return true,
            ";" | "{" | "}" | "=" => return false,
            _ => {}
        }
    }
    false
}

/// Whether the statement containing the hash-iteration site `i`
/// accumulates floats: a `sum`/`product`/`fold` call appears after the
/// site before the statement ends, with float evidence (an `f64`/`f32`
/// token or a float literal) anywhere in the statement — including
/// before the site, as in `let total: f64 = m.values().sum();`.
fn float_accumulation_after(toks: &[Tok], i: usize) -> bool {
    let mut saw_accum = false;
    let mut saw_float = false;
    // Backward to the statement start for float evidence only.
    for t in toks[i.saturating_sub(30)..i].iter().rev() {
        match t.text.as_str() {
            ";" | "{" | "}" => break,
            "f64" | "f32" => saw_float = true,
            _ => {}
        }
        if t.kind == Kind::Float {
            saw_float = true;
        }
    }
    // Forward to the statement end for the accumulator call (and any
    // trailing float evidence, e.g. `.sum::<f64>()`).
    let mut depth: i32 = 0;
    for t in toks.iter().skip(i).take(120) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            }
            ";" if depth == 0 => break,
            "sum" | "product" | "fold" => saw_accum = true,
            "f64" | "f32" => saw_float = true,
            _ => {}
        }
        if t.kind == Kind::Float {
            saw_float = true;
        }
        if saw_accum && saw_float {
            return true;
        }
    }
    saw_accum && saw_float
}

const UNIT_SUFFIXES: &[&str] = &["_ns", "_us", "_ps", "_bytes", "_gib", "_credits"];

fn check_tf003(toks: &[Tok], test_mask: &[bool], rel_path: &str, diags: &mut Vec<Diagnostic>) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "pub" || test_mask[i] {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // `pub(crate)` and friends are not public API.
        if toks.get(j).is_some_and(|t| t.text == "(") {
            i += 1;
            continue;
        }
        while toks
            .get(j)
            .is_some_and(|t| matches!(t.text.as_str(), "const" | "async" | "unsafe" | "extern"))
        {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.text == "fn") {
            i += 1;
            continue;
        }
        j += 2; // past `fn` and the name
        // Skip generics.
        if toks.get(j).is_some_and(|t| t.text == "<") {
            let mut depth = 1;
            j += 1;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    _ => {}
                }
                j += 1;
            }
        }
        if !toks.get(j).is_some_and(|t| t.text == "(") {
            i = j;
            continue;
        }
        // Walk the parameter list.
        let mut depth = 1;
        j += 1;
        while j < toks.len() && depth > 0 {
            match toks[j].text.as_str() {
                "(" => depth += 1,
                ")" => depth -= 1,
                _ => {}
            }
            if depth >= 1
                && toks[j].kind == Kind::Ident
                && UNIT_SUFFIXES.iter().any(|s| toks[j].text.ends_with(s))
                && toks.get(j + 1).is_some_and(|t| t.text == ":")
                && toks
                    .get(j + 2)
                    .is_some_and(|t| t.text == "u64" || t.text == "f64")
                && toks
                    .get(j + 3)
                    .is_some_and(|t| t.text == "," || t.text == ")")
            {
                diags.push(Diagnostic {
                    rule: "TF003",
                    file: rel_path.to_string(),
                    line: toks[j].line,
                    col: toks[j].col,
                    message: format!(
                        "public parameter `{}: {}` smuggles a unit in its name; take `SimTime`/`Rate`/a unit newtype instead",
                        toks[j].text,
                        toks[j + 2].text
                    ),
                });
            }
            j += 1;
        }
        i = j;
    }
}

/// TF013: `pub fn name(&mut self, ..) -> bool` (or `-> Option<()>`)
/// outside query-prefixed names, in a crate that already defines a typed
/// error. A bare `bool`/`Option<()>` from a mutating call collapses
/// every failure cause into one bit.
fn check_tf013(
    toks: &[Tok],
    test_mask: &[bool],
    rel_path: &str,
    error_types: &BTreeSet<String>,
    diags: &mut Vec<Diagnostic>,
) {
    let errs: Vec<&str> = error_types.iter().map(String::as_str).collect();
    let err_hint = errs.join("/");
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "pub" || test_mask[i] {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.text == "(") {
            // `pub(crate)` etc: not public API.
            i += 1;
            continue;
        }
        while toks
            .get(j)
            .is_some_and(|t| matches!(t.text.as_str(), "const" | "async" | "unsafe" | "extern"))
        {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.text == "fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(j + 1) else {
            break;
        };
        let name = name_tok.text.clone();
        j += 2;
        if toks.get(j).is_some_and(|t| t.text == "<") {
            let mut depth = 1;
            j += 1;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    _ => {}
                }
                j += 1;
            }
        }
        if !toks.get(j).is_some_and(|t| t.text == "(") {
            i = j;
            continue;
        }
        // Does the receiver mutate? `&mut self` (with optional lifetime).
        let mut k = j + 1;
        let mut mut_self = false;
        if toks.get(k).is_some_and(|t| t.text == "&") {
            k += 1;
            if toks.get(k).is_some_and(|t| t.kind == Kind::Lifetime) {
                k += 1;
            }
            if toks.get(k).is_some_and(|t| t.text == "mut")
                && toks.get(k + 1).is_some_and(|t| t.text == "self")
            {
                mut_self = true;
            }
        }
        // Skip to the closing paren of the parameter list.
        let mut depth = 1;
        let mut p = j + 1;
        while p < toks.len() && depth > 0 {
            match toks[p].text.as_str() {
                "(" => depth += 1,
                ")" => depth -= 1,
                _ => {}
            }
            p += 1;
        }
        if mut_self
            && !QUERY_PREFIXES.iter().any(|q| name.starts_with(q))
            && toks.get(p).is_some_and(|t| t.text == "->")
        {
            let bare_bool = toks.get(p + 1).is_some_and(|t| t.text == "bool")
                && toks
                    .get(p + 2)
                    .is_some_and(|t| t.text == "{" || t.text == "where" || t.text == ";");
            let option_unit = toks.get(p + 1).is_some_and(|t| t.text == "Option")
                && toks.get(p + 2).is_some_and(|t| t.text == "<")
                && toks.get(p + 3).is_some_and(|t| t.text == "(")
                && toks.get(p + 4).is_some_and(|t| t.text == ")")
                && toks.get(p + 5).is_some_and(|t| t.text == ">");
            if bare_bool || option_unit {
                let shape = if bare_bool { "bool" } else { "Option<()>" };
                diags.push(Diagnostic {
                    rule: "TF013",
                    file: rel_path.to_string(),
                    line: name_tok.line,
                    col: name_tok.col,
                    message: format!(
                        "public fallible `{name}(&mut self, ..) -> {shape}` collapses every failure cause into one bit; return `Result<_, {err_hint}>` (the crate already defines it)"
                    ),
                });
            }
        }
        i = p;
    }
}

/// Looks back from an `as` cast for evidence the source expression
/// carries time/credit/byte units or is floating-point (either way, an
/// integer cast truncates). The scan stays within the statement.
fn cast_source_is_unit_like(toks: &[Tok], as_idx: usize) -> bool {
    let start = as_idx.saturating_sub(12);
    for t in toks[start..as_idx].iter().rev() {
        match t.text.as_str() {
            ";" | "{" | "}" => return false,
            "f64" | "f32" => return true,
            _ => {}
        }
        if t.kind == Kind::Float {
            return true;
        }
        if t.kind == Kind::Ident && !t.text.chars().any(|c| c.is_ascii_uppercase()) {
            let id = &t.text;
            if id.contains("time")
                || id.contains("credit")
                || id.contains("byte")
                || id.contains("flit")
                || UNIT_SUFFIXES.iter().any(|s| id.ends_with(s))
                || matches!(id.as_str(), "ps" | "ns" | "us")
            {
                return true;
            }
        }
    }
    false
}

// ------------------------------------------------------------ file walking

/// Collects (crate, rel_path, source) units for one crate directory.
fn collect_crate_units(crate_dir: &Path) -> io::Result<Vec<Unit>> {
    let crate_name = if crate_dir.join("crates").is_dir() {
        "thymesisflow".to_string()
    } else {
        crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("thymesisflow")
            .to_string()
    };
    let mut units = Vec::new();
    let src = crate_dir.join("src");
    if src.is_dir() {
        walk(&src, &mut |path| {
            let source = std::fs::read_to_string(path)?;
            let rel = path.to_string_lossy().into_owned();
            units.push(Unit::new(&crate_name, &rel, &source));
            Ok(())
        })?;
    }
    Ok(units)
}

/// Collects units for the whole workspace rooted at `root`: the root
/// package plus every crate under `crates/`. `vendor/` (offline
/// dependency stand-ins) and `target/` are never linted.
fn collect_workspace_units(root: &Path) -> io::Result<Vec<Unit>> {
    // A mistyped root would otherwise scan nothing and report a clean
    // workspace — a false green for CI.
    if !root.join("src").is_dir() && !root.join("crates").is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no src/ or crates/ under {}", root.display()),
        ));
    }
    let mut units = collect_crate_units(root)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<_> = std::fs::read_dir(&crates)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            units.extend(collect_crate_units(&dir)?);
        }
    }
    Ok(units)
}

/// Lints every `.rs` file under `crate_dir/src`. The crate name is taken
/// from the directory name (the workspace root maps to `thymesisflow`).
/// `tests/`, `benches/`, and `examples/` are intentionally out of scope.
/// The cross-file index covers the crate's own files.
pub fn check_crate(crate_dir: &Path) -> io::Result<Vec<Diagnostic>> {
    let units = collect_crate_units(crate_dir)?;
    Ok(run_units(&units).0)
}

/// Lints one crate *and* audits its allow comments: rule findings plus
/// ALW001 (stale allow) / ALW002 (reasonless allow). This is what the
/// per-crate [`gate!`] test runs, so allow hygiene fails `cargo test`
/// the same way a rule violation does.
pub fn gate_crate(crate_dir: &Path) -> io::Result<Vec<Diagnostic>> {
    let units = collect_crate_units(crate_dir)?;
    let (mut diags, audit) = run_units(&units);
    diags.extend(audit);
    Ok(diags)
}

/// Lints the whole workspace rooted at `root` with the full cross-crate
/// index in scope.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let units = collect_workspace_units(root)?;
    Ok(run_units(&units).0)
}

/// Audits every allow comment in the workspace: stale and reasonless
/// allows as ALW00x diagnostics (empty when hygiene is clean).
pub fn audit_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let units = collect_workspace_units(root)?;
    Ok(run_units(&units).1)
}

fn walk(dir: &Path, f: &mut dyn FnMut(&Path) -> io::Result<()>) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, f)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            f(&path)?;
        }
    }
    Ok(())
}

/// Expands to the per-crate static-analysis gate test: `cargo test`
/// fails if the crate violates any tflint rule **or** carries a stale
/// or reasonless `tflint::allow`. Every workspace member's
/// `tests/tflint_gate.rs` is exactly one invocation of this macro; the
/// `gate_coverage` test in the tflint crate asserts none is missing.
#[macro_export]
macro_rules! gate {
    () => {
        #[test]
        fn crate_passes_tflint() {
            let diags = $crate::gate_crate(::std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
                .expect("crate source readable");
            assert!(diags.is_empty(), "\n{}", $crate::render(&diags));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_tracks_lines_and_skips_comments() {
        let src = "let a = 1; // trailing\n/* block\nspanning */ let b = 2.5;\n";
        let lexed = lex(src);
        let b = lexed.toks.iter().find(|t| t.text == "b").expect("token b");
        assert_eq!(b.line, 3);
        let f = lexed
            .toks
            .iter()
            .find(|t| t.kind == Kind::Float)
            .expect("float");
        assert_eq!(f.text, "2.5");
    }

    #[test]
    fn lexer_separates_ranges_from_floats() {
        let lexed = lex("for i in 0..120 { x = 0.5; }");
        let nums: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| matches!(t.kind, Kind::Int | Kind::Float))
            .map(|t| (t.text.clone(), t.kind))
            .collect();
        assert_eq!(
            nums,
            vec![
                ("0".to_string(), Kind::Int),
                ("120".to_string(), Kind::Int),
                ("0.5".to_string(), Kind::Float),
            ]
        );
    }

    #[test]
    fn lexer_handles_lifetimes_and_chars() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'y' }");
        assert_eq!(
            lexed.toks.iter().filter(|t| t.kind == Kind::Lifetime).count(),
            2
        );
        assert_eq!(lexed.toks.iter().filter(|t| t.kind == Kind::Char).count(), 1);
    }

    #[test]
    fn lexer_handles_raw_and_byte_strings() {
        let lexed = lex(r##"let a = r#"raw "quoted" body"#; let b = b"bytes"; let c = rng;"##);
        assert_eq!(lexed.toks.iter().filter(|t| t.kind == Kind::Str).count(), 2);
        assert!(lexed.toks.iter().any(|t| t.text == "rng"));
    }

    #[test]
    fn allow_comments_parse_multiple_rules_and_reason() {
        let lexed = lex("x(); // tflint::allow(TF004, TF005) — invariant upheld by validate()\n");
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].rules, vec!["TF004", "TF005"]);
        assert_eq!(
            lexed.allows[0].reason.as_deref(),
            Some("invariant upheld by validate()")
        );
        let bare = lex("x(); // tflint::allow(TF004)\n");
        assert_eq!(bare.allows[0].reason, None);
    }

    #[test]
    fn test_mask_covers_cfg_test_modules() {
        let src = "fn lib(x: Option<u8>) -> u8 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { y.unwrap(); }\n}\n";
        let diags = check_source("llc", "src/x.rs", src);
        assert_eq!(diags.len(), 1, "{}", render(&diags));
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[0].rule, "TF004");
    }

    #[test]
    fn index_records_items_with_spans() {
        let src = "use std::collections::HashMap;\npub mod api;\npub struct CoreError;\nimpl CoreError {}\nfn helper() {}\npub enum Mode { A }\n";
        let idx = index_sources(&[("core", "src/x.rs", src)]);
        let items = idx.items("core", "src/x.rs").expect("indexed");
        let kinds: Vec<ItemKind> = items.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ItemKind::Use,
                ItemKind::Mod,
                ItemKind::Struct,
                ItemKind::Impl,
                ItemKind::Fn,
                ItemKind::Enum
            ]
        );
        assert_eq!(items[1].name, "api");
        assert!(items[1].is_pub);
        assert_eq!(items[4].name, "helper");
        assert!(!items[4].is_pub);
        assert_eq!(items[2].line, 3);
        assert!(idx.error_types("core").any(|e| e == "CoreError"));
    }

    #[test]
    fn index_tracks_hash_aliases() {
        let src = "use std::collections::HashMap as Map;\nstruct S { routes: Map<u32, u32> }\n";
        let idx = index_sources(&[("netsim", "src/x.rs", src)]);
        assert!(idx.hash_named("netsim").any(|n| n == "routes"));
    }

    #[test]
    fn index_sees_let_bound_constructions() {
        let src = "fn f() { let mut seen = HashMap::new(); seen.insert(1, 2); }\n";
        let idx = index_sources(&[("core", "src/x.rs", src)]);
        assert!(idx.hash_named("core").any(|n| n == "seen"));
    }
}
