//! tflint CLI: `cargo run -p tflint -- check [--format json] [--audit-allows] [path]`.
//!
//! Exits non-zero when any rule fires, so CI can gate on it.
//! `--format json` emits the schema-stable diagnostic report for CI
//! artifacts; `--audit-allows` additionally fails on stale or
//! reasonless `tflint::allow` comments. `rules` prints the rule table.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/tflint -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

struct CheckOpts {
    json: bool,
    audit: bool,
    root: PathBuf,
}

fn parse_check_opts(args: &[String]) -> Result<CheckOpts, String> {
    let mut json = false;
    let mut audit = false;
    let mut root = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    return Err(format!(
                        "--format takes `json` or `text`, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--audit-allows" => audit = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            path => {
                if root.replace(PathBuf::from(path)).is_some() {
                    return Err("more than one path given".to_string());
                }
            }
        }
    }
    Ok(CheckOpts {
        json,
        audit,
        root: root.unwrap_or_else(workspace_root),
    })
}

fn run_check(opts: &CheckOpts) -> ExitCode {
    let mut diags = match tflint::check_workspace(&opts.root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("tflint: cannot read workspace at {}: {e}", opts.root.display());
            return ExitCode::FAILURE;
        }
    };
    if opts.audit {
        match tflint::audit_workspace(&opts.root) {
            Ok(audit) => diags.extend(audit),
            Err(e) => {
                eprintln!("tflint: cannot audit allows at {}: {e}", opts.root.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if opts.json {
        println!("{}", tflint::render_json(&diags));
    } else if diags.is_empty() {
        println!("tflint: workspace clean ({} rules)", tflint::RULES.len());
    } else {
        println!("{}", tflint::render(&diags));
        println!("tflint: {} violation(s)", diags.len());
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => match parse_check_opts(&args[1..]) {
            Ok(opts) => run_check(&opts),
            Err(e) => {
                eprintln!("tflint: {e}");
                ExitCode::FAILURE
            }
        },
        Some("rules") => {
            for (id, desc) in tflint::RULES {
                println!("{id}  {desc}");
            }
            for (id, desc) in tflint::AUDIT_RULES {
                println!("{id}  {desc}  (via --audit-allows)");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: tflint <check [--format json|text] [--audit-allows] [path] | rules>");
            eprintln!("  check   lint the workspace (default: this repository)");
            eprintln!("          --format json    schema-stable diagnostic report");
            eprintln!("          --audit-allows   also fail on stale/reasonless allows");
            eprintln!("  rules   list the rule set");
            ExitCode::FAILURE
        }
    }
}
