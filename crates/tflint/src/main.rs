//! tflint CLI: `cargo run -p tflint -- check [path]`.
//!
//! Exits non-zero when any rule fires, so CI can gate on it. `rules`
//! prints the rule table.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/tflint -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => {
            let root = args.get(1).map(PathBuf::from).unwrap_or_else(workspace_root);
            match tflint::check_workspace(&root) {
                Ok(diags) if diags.is_empty() => {
                    println!("tflint: workspace clean ({} rules)", tflint::RULES.len());
                    ExitCode::SUCCESS
                }
                Ok(diags) => {
                    println!("{}", tflint::render(&diags));
                    println!("tflint: {} violation(s)", diags.len());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("tflint: cannot read workspace at {}: {e}", root.display());
                    ExitCode::FAILURE
                }
            }
        }
        Some("rules") => {
            for (id, desc) in tflint::RULES {
                println!("{id}  {desc}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: tflint <check [path] | rules>");
            eprintln!("  check   lint the workspace (default: this repository)");
            eprintln!("  rules   list the rule set");
            ExitCode::FAILURE
        }
    }
}
