//! Asserts every workspace member carries the static-analysis gate, so
//! a newly added crate cannot silently skip tflint: each `crates/*`
//! directory with a `Cargo.toml` (and the root package) must have a
//! `tests/tflint_gate.rs` that invokes `tflint::gate!()`.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/tflint -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(PathBuf::from)
        .expect("tflint lives two levels under the workspace root")
}

fn assert_gated(member: &Path, missing: &mut Vec<String>) {
    let gate = member.join("tests").join("tflint_gate.rs");
    let ok = std::fs::read_to_string(&gate)
        .map(|src| src.contains("tflint::gate!"))
        .unwrap_or(false);
    if !ok {
        missing.push(member.display().to_string());
    }
}

#[test]
fn every_workspace_member_has_a_tflint_gate() {
    let root = workspace_root();
    let mut missing = Vec::new();
    assert_gated(&root, &mut missing);
    let crates = root.join("crates");
    let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)
        .expect("crates/ readable")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.join("Cargo.toml").is_file())
        .collect();
    members.sort();
    assert!(!members.is_empty(), "no members under {}", crates.display());
    for member in &members {
        assert_gated(member, &mut missing);
    }
    assert!(
        missing.is_empty(),
        "workspace members without a tests/tflint_gate.rs invoking tflint::gate!():\n  {}",
        missing.join("\n  ")
    );
}
