//! Fixture tests: each rule fires on a seeded violation, respects its
//! crate scope, and is silenced by a `// tflint::allow(RULE)` comment.

use tflint::{check_source, render, Diagnostic};

fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

// ------------------------------------------------------------------ TF001

#[test]
fn tf001_fires_on_wall_clock() {
    // The `::now()` read additionally trips TF007.
    let src = "fn t() -> std::time::Instant { std::time::Instant::now() }\n";
    let diags = check_source("llc", "src/x.rs", src);
    assert_eq!(
        rules_of(&diags),
        ["TF001", "TF001", "TF007"],
        "{}",
        render(&diags)
    );
    assert_eq!(diags[0].line, 1);
}

#[test]
fn tf001_fires_on_system_time() {
    let src = "fn t() { let _ = std::time::SystemTime::now(); }\n";
    let diags = check_source("simkit", "src/x.rs", src);
    assert_eq!(rules_of(&diags), ["TF001", "TF007"]);
}

#[test]
fn tf001_fires_on_bare_type_mention_without_tf007() {
    // Holding the type without reading the clock is a TF001-only find.
    let src = "fn t(deadline: std::time::Instant) {}\n";
    let diags = check_source("llc", "src/x.rs", src);
    assert_eq!(rules_of(&diags), ["TF001"], "{}", render(&diags));
}

#[test]
fn tf001_allow_suppresses() {
    // A wall-clock *read* needs both rules allowed; the type alone
    // needs only TF001.
    let src = "// tflint::allow(TF001, TF007): host-facing timer, not sim time\nfn t() { let _ = std::time::SystemTime::now(); }\n";
    assert!(check_source("llc", "src/x.rs", src).is_empty());
    let typed = "// tflint::allow(TF001): host-facing deadline\nfn t(deadline: std::time::Instant) {}\n";
    assert!(check_source("llc", "src/x.rs", typed).is_empty());
}

// ------------------------------------------------------------------ TF002

#[test]
fn tf002_fires_on_entropy_rng() {
    let src = "fn t() { let mut r = rand::thread_rng(); }\n";
    let diags = check_source("dcsim", "src/x.rs", src);
    assert_eq!(rules_of(&diags), ["TF002"], "{}", render(&diags));
}

#[test]
fn tf002_fires_on_os_rng() {
    let src = "use rand::rngs::OsRng;\n";
    let diags = check_source("workloads", "src/x.rs", src);
    assert_eq!(rules_of(&diags), ["TF002"]);
}

#[test]
fn tf002_exempts_the_rng_home_module() {
    let src = "pub fn seed_from_os() { let _ = OsRng; }\n";
    assert!(check_source("simkit", "src/rng.rs", src).is_empty());
    assert_eq!(rules_of(&check_source("simkit", "src/other.rs", src)), ["TF002"]);
}

#[test]
fn tf002_allow_suppresses() {
    let src = "let r = rand::thread_rng(); // tflint::allow(TF002)\n";
    assert!(check_source("dcsim", "src/x.rs", src).is_empty());
}

#[test]
fn tf002_fires_on_ad_hoc_seeding_and_points_at_split_stream() {
    let src = "fn t(seed: u64) { let r = StdRng::seed_from_u64(seed); }\n";
    let diags = check_source("bench", "src/x.rs", src);
    assert_eq!(rules_of(&diags), ["TF002"], "{}", render(&diags));
    assert!(
        diags[0].message.contains("split_stream"),
        "{}",
        diags[0].message
    );
    // Inside the rng home module, seeding primitives are the point.
    assert!(check_source("simkit", "src/rng.rs", src).is_empty());
}

#[test]
fn tf002_split_stream_needs_no_allow() {
    // Derived streams via the blessed API are clean everywhere.
    let src = "fn t() { let r = simkit::rng::DetRng::split_stream(42, 3); }\n";
    assert!(check_source("bench", "src/x.rs", src).is_empty());
    assert!(check_source("dcsim", "src/x.rs", src).is_empty());
}

// ------------------------------------------------------------------ TF003

#[test]
fn tf003_fires_on_unit_named_bare_param() {
    let src = "pub fn schedule(&mut self, delay_ns: u64) {}\n";
    let diags = check_source("simkit", "src/x.rs", src);
    assert_eq!(rules_of(&diags), ["TF003"], "{}", render(&diags));
}

#[test]
fn tf003_scope_is_public_api_crates_only() {
    let src = "pub fn schedule(&mut self, delay_ns: u64) {}\n";
    assert!(check_source("dcsim", "src/x.rs", src).is_empty());
}

#[test]
fn tf003_covers_the_core_fabric_module() {
    // The flit-level fabric inherits the unit discipline of the crates
    // it composes, even though `core` as a whole is out of scope.
    let src = "pub fn reserve(&mut self, window_bytes: u64) {}\n";
    let diags = check_source("core", "src/fabric/builder.rs", src);
    assert_eq!(rules_of(&diags), ["TF003"], "{}", render(&diags));
    assert!(check_source("core", "src/datapath.rs", src).is_empty());
    assert!(check_source("core", "src/rack.rs", src).is_empty());
}

#[test]
fn tf003_ignores_newtype_params() {
    let src = "pub fn schedule(&mut self, delay: SimTime) {}\n";
    assert!(check_source("simkit", "src/x.rs", src).is_empty());
}

#[test]
fn tf003_allow_suppresses() {
    let src = "// tflint::allow(TF003): serde boundary, raw integer by design\npub fn set_budget(&mut self, cap_bytes: u64) {}\n";
    assert!(check_source("llc", "src/x.rs", src).is_empty());
}

// ------------------------------------------------------------------ TF004

#[test]
fn tf004_fires_on_unwrap_expect_panic() {
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g(x: Option<u8>) -> u8 { x.expect(\"boom\") }\nfn h() { panic!(\"no\"); }\n";
    let diags = check_source("routing", "src/x.rs", src);
    assert_eq!(rules_of(&diags), ["TF004", "TF004", "TF004"], "{}", render(&diags));
    assert_eq!(diags.iter().map(|d| d.line).collect::<Vec<_>>(), [1, 2, 3]);
}

#[test]
fn tf004_scope_is_datapath_crates_only() {
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    assert!(check_source("simkit", "src/x.rs", src).is_empty());
}

#[test]
fn tf004_covers_the_core_fabric_module() {
    // A panic in the fabric engine aborts every path on the shared
    // event queue, so the datapath no-panic rule extends to it.
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    let diags = check_source("core", "src/fabric/engine.rs", src);
    assert_eq!(rules_of(&diags), ["TF004"], "{}", render(&diags));
    assert!(check_source("core", "src/rack.rs", src).is_empty());
}

#[test]
fn tf004_ignores_test_code_and_unwrap_or() {
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n";
    assert!(check_source("llc", "src/x.rs", src).is_empty());
}

#[test]
fn tf004_allow_suppresses() {
    let src = "// tflint::allow(TF004): config validated at construction\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    assert!(check_source("llc", "src/x.rs", src).is_empty());
}

// ------------------------------------------------------------------ TF005

#[test]
fn tf005_fires_on_narrowing_cast() {
    let src = "fn f(ticks: u64) -> u32 { ticks as u32 }\n";
    let diags = check_source("llc", "src/x.rs", src);
    assert_eq!(rules_of(&diags), ["TF005"], "{}", render(&diags));
}

#[test]
fn tf005_fires_on_float_to_wide_int_on_unit_value() {
    let src = "fn f(delay_ns: f64) -> u64 { delay_ns as u64 }\n";
    let diags = check_source("simkit", "src/x.rs", src);
    assert_eq!(rules_of(&diags), ["TF005"]);
}

#[test]
fn tf005_ignores_unitless_widening() {
    let src = "fn f(n: u32) -> u64 { n as u64 }\n";
    assert!(check_source("llc", "src/x.rs", src).is_empty());
}

#[test]
fn tf005_scope_is_cast_crates_only() {
    let src = "fn f(ticks: u64) -> u32 { ticks as u32 }\n";
    assert!(check_source("netsim", "src/x.rs", src).is_empty());
}

#[test]
fn tf005_allow_suppresses() {
    let src = "fn f(ticks: u64) -> u32 { ticks as u32 } // tflint::allow(TF005)\n";
    assert!(check_source("llc", "src/x.rs", src).is_empty());
}

// ------------------------------------------------------------------ TF006

#[test]
fn tf006_fires_on_float_equality() {
    let src = "fn f(x: f64) -> bool { x == 0.0 }\nfn g(x: f64) -> bool { 1.5 != x }\n";
    let diags = check_source("bench", "src/x.rs", src);
    assert_eq!(rules_of(&diags), ["TF006", "TF006"], "{}", render(&diags));
}

#[test]
fn tf006_ignores_integer_equality() {
    let src = "fn f(x: u64) -> bool { x == 0 }\n";
    assert!(check_source("bench", "src/x.rs", src).is_empty());
}

#[test]
fn tf006_scope_is_float_math_crates_only() {
    let src = "fn f(x: f64) -> bool { x == 0.0 }\n";
    assert!(check_source("llc", "src/x.rs", src).is_empty());
}

#[test]
fn tf006_allow_suppresses() {
    let src = "fn f(x: f64) -> bool { x == 0.0 } // tflint::allow(TF006)\n";
    assert!(check_source("bench", "src/x.rs", src).is_empty());
}

// ------------------------------------------------------------------ TF007

#[test]
fn tf007_fires_on_instant_now() {
    let src = "fn t() { let _ = Instant::now(); }\n";
    let diags = check_source("core", "src/x.rs", src);
    assert!(
        rules_of(&diags).contains(&"TF007"),
        "{}",
        render(&diags)
    );
}

#[test]
fn tf007_fires_on_unix_epoch() {
    let src = "fn t() -> u64 { SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_secs() }\n";
    let diags = check_source("workloads", "src/x.rs", src);
    assert!(
        rules_of(&diags).contains(&"TF007"),
        "UNIX_EPOCH read must fire: {}",
        render(&diags)
    );
}

#[test]
fn tf007_fires_even_inside_test_code() {
    // TF001 exempts `#[cfg(test)]`; TF007 does not — a wall-clock read
    // in a test invalidates deterministic-replay comparisons just the
    // same.
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = Instant::now(); }\n}\n";
    let diags = check_source("simkit", "src/x.rs", src);
    assert_eq!(rules_of(&diags), ["TF007"], "{}", render(&diags));
}

#[test]
fn tf007_ignores_elapsed_and_other_idents() {
    let src = "fn t(start: SimTime, now: SimTime) -> SimTime { now.saturating_sub(start) }\n";
    assert!(check_source("simkit", "src/x.rs", src).is_empty());
    let elapsed = "fn t() { let elapsed = queue.now(); }\n";
    assert!(check_source("core", "src/x.rs", elapsed).is_empty());
}

#[test]
fn tf007_scope_is_sim_crates_only() {
    let src = "fn t() { let _ = Instant::now(); }\n";
    assert!(check_source("bench", "src/x.rs", src).is_empty());
}

#[test]
fn tf007_allow_suppresses() {
    let src =
        "fn t() { let _ = Instant::now(); } // tflint::allow(TF001, TF007): host profiling\n";
    assert!(check_source("core", "src/x.rs", src).is_empty());
}

// ------------------------------------------------------------------ TF008

#[test]
fn tf008_fires_in_recovery_modules_of_any_crate() {
    // ctrlplane is outside TF004's datapath scope, but its retry module
    // is recovery code: a panic there swallows the typed fault.
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g(x: Option<u8>) -> u8 { x.expect(\"boom\") }\n";
    let diags = check_source("ctrlplane", "src/retry.rs", src);
    assert_eq!(rules_of(&diags), ["TF008", "TF008"], "{}", render(&diags));
    let diags = check_source("core", "src/recovery.rs", src);
    assert_eq!(rules_of(&diags), ["TF008", "TF008"], "{}", render(&diags));
}

#[test]
fn tf008_defers_to_tf004_inside_the_datapath() {
    // core::fabric::chaos is both recovery- and fabric-scoped; TF004
    // owns it so a violation reports exactly once.
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    let diags = check_source("core", "src/fabric/chaos.rs", src);
    assert_eq!(rules_of(&diags), ["TF004"], "{}", render(&diags));
    let diags = check_source("llc", "src/recovery.rs", src);
    assert_eq!(rules_of(&diags), ["TF004"], "{}", render(&diags));
}

#[test]
fn tf008_scope_is_recovery_files_only() {
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    assert!(check_source("ctrlplane", "src/service.rs", src).is_empty());
    assert!(check_source("core", "src/rack.rs", src).is_empty());
}

#[test]
fn tf008_ignores_test_code_and_allow_suppresses() {
    let test_only = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n";
    assert!(check_source("ctrlplane", "src/retry.rs", test_only).is_empty());
    let allowed = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // tflint::allow(TF008): invariant held by caller\n";
    assert!(check_source("ctrlplane", "src/retry.rs", allowed).is_empty());
}

// ----------------------------------------------------------------- general

#[test]
fn allow_only_silences_the_named_rule() {
    // An allow for TF001 does not blanket-suppress a TF004 on the line.
    let src = "// tflint::allow(TF001)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    let diags = check_source("llc", "src/x.rs", src);
    assert_eq!(rules_of(&diags), ["TF004"]);
}

#[test]
fn diagnostics_render_with_location() {
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    let diags = check_source("llc", "src/inner/x.rs", src);
    let out = render(&diags);
    assert!(out.contains("TF004"), "{out}");
    assert!(out.contains("src/inner/x.rs:1:"), "{out}");
}

#[test]
fn seeded_violations_of_every_rule_are_caught() {
    // One file per rule scope, exercising all eight rules at once — the
    // acceptance check that tflint "exits non-zero on seeded violations
    // of each rule".
    let cases: &[(&str, &str, &str)] = &[
        ("TF001", "llc", "fn t() { let _ = Instant::now(); }\n"),
        ("TF002", "dcsim", "fn t() { let _ = thread_rng(); }\n"),
        ("TF003", "netsim", "pub fn cfg(&mut self, span_us: u64) {}\n"),
        ("TF004", "rmmu", "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n"),
        ("TF005", "simkit", "fn f(t_ps: u64) -> u32 { t_ps as u32 }\n"),
        ("TF006", "workloads", "fn f(x: f64) -> bool { x != 2.5 }\n"),
        (
            "TF007",
            "core",
            "#[cfg(test)]\nmod t { #[test] fn f() { let _ = SystemTime::now(); } }\n",
        ),
        ("TF008", "ctrlplane", "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n"),
    ];
    for (rule, krate, src) in cases {
        let rel = if *rule == "TF008" { "src/retry.rs" } else { "src/x.rs" };
        let diags = check_source(krate, rel, src);
        assert!(
            diags.iter().any(|d| d.rule == *rule),
            "{rule} did not fire in {krate}: {}",
            render(&diags)
        );
    }
}
