//! Fixture tests for the workspace-aware determinism rules TF009–TF014,
//! the allow audit (ALW001/ALW002), the cross-file index, and the JSON
//! report. Each rule gets a positive (fires, pinned count), an allowed
//! (suppressed by a reasoned allow), and a negative (must stay silent)
//! fixture, mirroring the TF001–TF008 suite in `rules.rs`.

use tflint::{audit_sources, check_source, check_sources, index_sources, render};

fn rules_of(diags: &[tflint::Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

// ----------------------------------------------------------------- TF009

#[test]
fn tf009_flags_hashmap_iteration_methods() {
    let src = "\
use std::collections::HashMap;
pub struct Engine { inflight: HashMap<u64, u32> }
impl Engine {
    pub fn drain_all(&mut self) -> u32 {
        self.inflight.values().count() as u32
    }
    pub fn sweep(&mut self) {
        self.inflight.retain(|_, v| *v > 0);
    }
}
";
    let diags = check_source("core", "src/engine.rs", src);
    assert_eq!(rules_of(&diags), ["TF009", "TF009"], "\n{}", render(&diags));
    assert_eq!(diags[0].line, 5);
    assert_eq!(diags[1].line, 8);
}

#[test]
fn tf009_flags_for_loop_over_hash_field() {
    let src = "\
use std::collections::HashSet;
pub struct Tracker { seen: HashSet<u64> }
impl Tracker {
    pub fn dump(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for v in &self.seen {
            out.push(*v);
        }
        out
    }
}
";
    let diags = check_source("netsim", "src/t.rs", src);
    assert_eq!(rules_of(&diags), ["TF009"], "\n{}", render(&diags));
    assert_eq!(diags[0].line, 6);
}

#[test]
fn tf009_sees_hashmap_through_use_alias() {
    let src = "\
use std::collections::HashMap as Map;
pub struct S { routes: Map<u32, u32> }
impl S {
    pub fn all(&self) -> usize { self.routes.iter().count() }
}
";
    let diags = check_source("routing", "src/r.rs", src);
    assert_eq!(rules_of(&diags), ["TF009"], "\n{}", render(&diags));
}

#[test]
fn tf009_keeps_topology_route_tables_ordered() {
    // The routing crate's topology module is route-identity ground
    // truth: link enumeration feeds named chaos targets, partition
    // cuts and the parity suites. A hash-ordered table there would
    // make all three scheduling-dependent, so the module must stay in
    // TF009 scope.
    let src = "\
use std::collections::HashMap;
pub struct Mesh { links: HashMap<String, u32> }
impl Mesh {
    pub fn names(&self) -> Vec<String> { self.links.keys().cloned().collect() }
}
";
    let diags = check_source("routing", "src/topology.rs", src);
    assert_eq!(rules_of(&diags), ["TF009"], "\n{}", render(&diags));
}

#[test]
fn tf009_cross_file_index_catches_remote_declaration() {
    // The map is declared in engine.rs; the iteration lives in rack.rs.
    // A per-file scanner cannot connect the two — the workspace index can.
    let engine = "\
use std::collections::HashMap;
pub struct Engine { pub inflight: HashMap<u64, u32> }
";
    let rack = "\
use crate::engine::Engine;
pub fn quiesced(e: &Engine) -> bool {
    e.inflight.values().all(|v| *v == 0)
}
";
    let diags = check_sources(&[
        ("core", "src/engine.rs", engine),
        ("core", "src/rack.rs", rack),
    ]);
    assert_eq!(rules_of(&diags), ["TF009"], "\n{}", render(&diags));
    assert_eq!(diags[0].file, "src/rack.rs");
    assert_eq!(diags[0].line, 3);
}

#[test]
fn tf009_reasoned_allow_suppresses_and_audit_is_clean() {
    let src = "\
use std::collections::HashMap;
pub struct S { m: HashMap<u64, u32> }
impl S {
    pub fn count(&self) -> usize {
        // tflint::allow(TF009): count() is order-insensitive.
        self.m.values().count()
    }
}
";
    let files = [("core", "src/s.rs", src)];
    assert!(check_sources(&files).is_empty());
    assert!(audit_sources(&files).is_empty());
}

#[test]
fn tf009_keyed_lookup_and_btreemap_stay_allowed() {
    let src = "\
use std::collections::{BTreeMap, HashMap};
pub struct S { fast: HashMap<u64, u32>, ordered: BTreeMap<u64, u32> }
impl S {
    pub fn lookup(&self, k: u64) -> Option<u32> { self.fast.get(&k).copied() }
    pub fn store(&mut self, k: u64, v: u32) { self.fast.insert(k, v); }
    pub fn walk(&self) -> usize { self.ordered.iter().count() }
}
";
    let diags = check_source("core", "src/s.rs", src);
    assert!(diags.is_empty(), "\n{}", render(&diags));
}

#[test]
fn tf009_silent_outside_sim_crates_and_in_tests() {
    let src = "\
use std::collections::HashMap;
pub struct S { m: HashMap<u64, u32> }
impl S {
    pub fn all(&self) -> usize { self.m.iter().count() }
}
";
    assert!(check_source("tflint", "src/s.rs", src).is_empty());
    let test_src = "\
use std::collections::HashMap;
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let mut m = HashMap::new();
        m.insert(1u64, 2u32);
        assert_eq!(m.iter().count(), 1);
    }
}
";
    let diags = check_source("core", "src/s.rs", test_src);
    assert!(diags.is_empty(), "\n{}", render(&diags));
}

// ----------------------------------------------------------------- TF010

#[test]
fn tf010_flags_static_mut_thread_local_and_cells() {
    let src = "\
static mut COUNTER: u64 = 0;
thread_local! {
    static SCRATCH: u64 = 0;
}
use std::cell::RefCell;
pub struct S { inner: RefCell<u64> }
";
    let diags = check_source("netsim", "src/s.rs", src);
    assert_eq!(
        rules_of(&diags),
        ["TF010", "TF010", "TF010", "TF010"],
        "\n{}",
        render(&diags)
    );
    // static mut, thread_local!, `use ... RefCell`, field type.
    assert_eq!(diags[0].line, 1);
    assert_eq!(diags[1].line, 2);
}

#[test]
fn tf010_blessed_in_simkit_sweep_and_reasoned_allow_elsewhere() {
    let src = "\
use std::cell::RefCell;
pub struct Harness { scratch: RefCell<u64> }
";
    assert!(check_source("simkit", "src/sweep.rs", src).is_empty());
    let allowed = "\
pub struct S {
    // tflint::allow(TF010): memoization cache, rebuilt deterministically.
    inner: std::cell::RefCell<u64>,
}
";
    let files = [("core", "src/s.rs", allowed)];
    assert!(check_sources(&files).is_empty());
    assert!(audit_sources(&files).is_empty());
}

#[test]
fn tf010_silent_on_plain_statics_and_test_code() {
    let src = "\
static LIMIT: u64 = 8;
pub fn limit() -> u64 { LIMIT }
#[cfg(test)]
mod tests {
    use std::cell::RefCell;
    #[test]
    fn t() { let c = RefCell::new(1u32); assert_eq!(*c.borrow(), 1); }
}
";
    let diags = check_source("core", "src/s.rs", src);
    assert!(diags.is_empty(), "\n{}", render(&diags));
}

// ----------------------------------------------------------------- TF011

#[test]
fn tf011_flags_sync_primitives_and_atomics() {
    let src = "\
use std::sync::{Mutex, RwLock};
use std::sync::atomic::AtomicU64;
pub struct S { m: Mutex<u64>, r: RwLock<u64>, a: AtomicU64 }
";
    let diags = check_source("core", "src/s.rs", src);
    // Each name fires at both its `use` and its field type.
    assert_eq!(
        rules_of(&diags),
        ["TF011"; 6].to_vec(),
        "\n{}",
        render(&diags)
    );
}

#[test]
fn tf011_blessed_in_sweep_arc_stays_legal() {
    let sweep = "\
use std::sync::Mutex;
pub struct Pool { results: Mutex<Vec<u64>> }
";
    assert!(check_source("simkit", "src/sweep.rs", sweep).is_empty());
    let arc = "\
use std::sync::Arc;
pub struct S { shared: Arc<[u8]> }
";
    let diags = check_source("llc", "src/frame.rs", arc);
    assert!(diags.is_empty(), "\n{}", render(&diags));
}

#[test]
fn tf010_tf011_blessed_in_simkit_partition() {
    // The conservative partition runner legitimately owns barriers,
    // atomics and mailbox mutexes — its whole contract is that they
    // never leak scheduling order into simulation state.
    let partition = "\
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
pub struct Round {
    mins: Vec<AtomicU64>,
    mail: Vec<Mutex<Vec<u64>>>,
    gate: Barrier,
}
";
    assert!(check_source("simkit", "src/partition.rs", partition).is_empty());
    let cells = "\
use std::cell::RefCell;
pub struct Scratch { pool: RefCell<Vec<u64>> }
";
    assert!(check_source("simkit", "src/partition.rs", cells).is_empty());
}

#[test]
fn tf011_partition_blessing_is_simkit_only() {
    // A partition.rs in any other crate gets no dispensation: the
    // blessing keys on (crate, file), not the file name alone.
    let src = "\
use std::sync::Mutex;
pub struct Shard { mail: Mutex<Vec<u64>> }
";
    let diags = check_source("core", "src/fabric/partition.rs", src);
    assert_eq!(
        rules_of(&diags),
        ["TF011", "TF011"],
        "\n{}",
        render(&diags)
    );
}

// ----------------------------------------------------------------- TF012

#[test]
fn tf012_flags_float_sum_over_hash_iteration() {
    let src = "\
use std::collections::HashMap;
pub struct Stats { samples: HashMap<u64, f64> }
impl Stats {
    pub fn total(&self) -> f64 {
        let total: f64 = self.samples.values().sum();
        total
    }
}
";
    let diags = check_source("dcsim", "src/s.rs", src);
    // The iteration itself is TF009; the accumulation adds TF012.
    assert_eq!(rules_of(&diags), ["TF009", "TF012"], "\n{}", render(&diags));
    assert_eq!(diags[1].line, 5);
}

#[test]
fn tf012_flags_turbofish_sum_form() {
    let src = "\
use std::collections::HashMap;
pub struct S { m: HashMap<u32, f64> }
impl S {
    pub fn t(&self) -> f64 { self.m.values().sum::<f64>() }
}
";
    let diags = check_source("workloads", "src/s.rs", src);
    assert_eq!(rules_of(&diags), ["TF009", "TF012"], "\n{}", render(&diags));
}

#[test]
fn tf012_silent_on_integer_accumulation_and_ordered_maps() {
    let int_sum = "\
use std::collections::HashMap;
pub struct S { m: HashMap<u32, u64> }
impl S {
    pub fn t(&self) -> u64 {
        // tflint::allow(TF009): sum of u64 is order-insensitive.
        self.m.values().sum()
    }
}
";
    let files = [("core", "src/s.rs", int_sum)];
    let diags = check_sources(&files);
    assert!(diags.is_empty(), "\n{}", render(&diags));
    let ordered = "\
use std::collections::BTreeMap;
pub struct S { m: BTreeMap<u32, f64> }
impl S {
    pub fn t(&self) -> f64 { self.m.values().sum::<f64>() }
}
";
    let diags = check_source("dcsim", "src/o.rs", ordered);
    assert!(diags.is_empty(), "\n{}", render(&diags));
}

// ----------------------------------------------------------------- TF013

#[test]
fn tf013_flags_bool_and_option_unit_mutators_when_typed_error_exists() {
    let src = "\
pub struct FlowError;
pub struct S { armed: bool }
impl S {
    pub fn arm(&mut self) -> bool { self.armed = true; true }
    pub fn disarm(&mut self) -> Option<()> { self.armed = false; Some(()) }
}
";
    let diags = check_source("rmmu", "src/s.rs", src);
    assert_eq!(rules_of(&diags), ["TF013", "TF013"], "\n{}", render(&diags));
    assert_eq!(diags[0].line, 4);
    assert_eq!(diags[1].line, 5);
    assert!(diags[0].message.contains("FlowError"));
}

#[test]
fn tf013_silent_without_typed_error_or_mutation_or_for_queries() {
    // No *Error type in the crate: the rule has nothing to suggest.
    let no_error = "\
pub struct S { armed: bool }
impl S {
    pub fn arm(&mut self) -> bool { self.armed = true; true }
}
";
    assert!(check_source("workloads", "src/s.rs", no_error).is_empty());
    // Queries, &self receivers, value-carrying Options, and random
    // samplers (the bool is the draw, not a success flag) are fine.
    let fine = "\
pub struct QueryError;
pub struct S { armed: bool }
impl S {
    pub fn is_armed(&self) -> bool { self.armed }
    pub fn contains_state(&mut self) -> bool { self.armed }
    pub fn peek(&self) -> Option<()> { None }
    pub fn take_slot(&mut self) -> Option<u32> { None }
    pub fn chance(&mut self, p: f64) -> bool { p > 0.5 }
    pub fn flip(&mut self) -> bool { self.armed }
}
";
    let diags = check_source("rmmu", "src/f.rs", fine);
    assert!(diags.is_empty(), "\n{}", render(&diags));
}

#[test]
fn tf013_reasoned_allow_suppresses() {
    let src = "\
pub struct CreditError;
pub struct S { n: u32 }
impl S {
    // tflint::allow(TF013): denial is backpressure, not an error.
    pub fn try_take(&mut self) -> bool { self.n > 0 }
}
";
    let files = [("llc", "src/s.rs", src)];
    assert!(check_sources(&files).is_empty());
    assert!(audit_sources(&files).is_empty());
}

// ----------------------------------------------------------------- TF014

#[test]
fn tf014_flags_console_macros_in_sim_library_code() {
    let src = "\
pub fn tick(now: u64) {
    println!(\"tick {now}\");
    eprintln!(\"warn {now}\");
    print!(\"raw\");
    eprint!(\"raw-err\");
}
";
    let diags = check_source("simkit", "src/engine.rs", src);
    assert_eq!(
        rules_of(&diags),
        ["TF014", "TF014", "TF014", "TF014"],
        "\n{}",
        render(&diags)
    );
    assert_eq!(diags[0].line, 2);
    assert!(diags[0].message.contains("telemetry registry"));
}

#[test]
fn tf014_silent_in_tests_non_sim_crates_and_for_string_formatting() {
    // #[cfg(test)] code may print freely (test output is the console's
    // job), non-sim crates (the linter itself, the bench harness) own
    // their stdout, and `format!`/`writeln!`-to-a-String are not
    // console writes.
    let test_code = "\
pub fn quiet() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { println!(\"debugging a trajectory\"); }
}
";
    assert!(check_source("core", "src/fabric/engine.rs", test_code).is_empty());
    let cli = "pub fn report() { println!(\"workspace clean\"); }\n";
    assert!(check_source("tflint", "src/main.rs", cli).is_empty());
    assert!(check_source("bench", "src/lib.rs", cli).is_empty());
    let formatting = "\
use std::fmt::Write;
pub fn render(out: &mut String) {
    let _ = writeln!(out, \"row\");
    let s = format!(\"row\");
    let _ = s;
}
";
    let diags = check_source("routing", "src/topology.rs", formatting);
    assert!(diags.is_empty(), "\n{}", render(&diags));
}

#[test]
fn tf014_reasoned_allow_suppresses() {
    let src = "\
pub fn panic_hook() {
    // tflint::allow(TF014): last-ditch diagnostics on abort, past the registry's lifetime.
    eprintln!(\"fabric aborted\");
}
";
    let files = [("netsim", "src/switch.rs", src)];
    assert!(check_sources(&files).is_empty());
    assert!(audit_sources(&files).is_empty());
}

// ------------------------------------------------------------ allow audit

#[test]
fn audit_flags_stale_allow_per_rule() {
    // TF004 genuinely fires; TF001 in the same allow is stale.
    let src = "\
pub fn f(x: Option<u8>) -> u8 {
    // tflint::allow(TF001, TF004): legacy comment kept one rule too many.
    x.unwrap()
}
";
    let files = [("llc", "src/s.rs", src)];
    assert!(check_sources(&files).is_empty(), "TF004 should be suppressed");
    let audit = audit_sources(&files);
    assert_eq!(rules_of(&audit), ["ALW001"], "\n{}", render(&audit));
    assert!(audit[0].message.contains("TF001"));
}

#[test]
fn audit_flags_reasonless_allow_even_when_it_suppresses() {
    let src = "\
pub fn f(x: Option<u8>) -> u8 {
    // tflint::allow(TF004)
    x.unwrap()
}
";
    let files = [("llc", "src/s.rs", src)];
    assert!(check_sources(&files).is_empty());
    let audit = audit_sources(&files);
    assert_eq!(rules_of(&audit), ["ALW002"], "\n{}", render(&audit));
}

#[test]
fn audit_ignores_prose_that_mentions_the_allow_syntax() {
    let src = "\
//! Suppress findings with a `// tflint::allow(TF004): reason` comment.
pub fn f() {}
";
    let files = [("llc", "src/s.rs", src)];
    assert!(audit_sources(&files).is_empty());
}

// ------------------------------------------------------- index inspection

#[test]
fn index_exposes_items_and_error_types_across_files() {
    let a = "\
pub mod wire;
pub struct WireError;
pub fn encode() {}
";
    let b = "\
use std::collections::HashMap;
pub struct Table { slots: HashMap<u32, u32> }
";
    let idx = index_sources(&[("llc", "src/lib.rs", a), ("llc", "src/wire.rs", b)]);
    let items = idx.items("llc", "src/lib.rs").expect("indexed");
    assert_eq!(items.len(), 3);
    assert!(items.iter().all(|i| i.is_pub));
    assert!(idx.error_types("llc").any(|e| e == "WireError"));
    assert!(idx.hash_named("llc").any(|n| n == "slots"));
}

// ------------------------------------------------------------ JSON report

#[test]
fn json_report_round_trips_through_value_tree() {
    let src = "\
use std::collections::HashMap;
pub struct S { m: HashMap<u64, u32> }
impl S {
    pub fn all(&self) -> usize { self.m.iter().count() }
}
";
    let diags = check_source("core", "src/s.rs", src);
    assert_eq!(rules_of(&diags), ["TF009"]);
    let json = tflint::render_json(&diags);
    let parsed: serde::Value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(parsed, tflint::diagnostics_value(&diags));
    // Schema-stable shape: top-level keys and per-diagnostic keys.
    let serde::Value::Map(top) = &parsed else {
        panic!("top level must be a map")
    };
    let keys: Vec<&str> = top.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, ["schema", "count", "diagnostics"]);
    assert_eq!(top[0].1, serde::Value::UInt(tflint::JSON_SCHEMA_VERSION));
    assert_eq!(top[1].1, serde::Value::UInt(1));
    let serde::Value::Seq(list) = &top[2].1 else {
        panic!("diagnostics must be a sequence")
    };
    let serde::Value::Map(entry) = &list[0] else {
        panic!("each diagnostic must be a map")
    };
    let entry_keys: Vec<&str> = entry.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(entry_keys, ["rule", "file", "line", "col", "message"]);
}

#[test]
fn json_report_for_clean_run_is_empty_but_well_formed() {
    let json = tflint::render_json(&[]);
    let parsed: serde::Value = serde_json::from_str(&json).expect("valid JSON");
    let serde::Value::Map(top) = &parsed else {
        panic!("top level must be a map")
    };
    assert_eq!(top[1], ("count".to_string(), serde::Value::UInt(0)));
}
