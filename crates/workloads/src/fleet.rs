//! Fleet-scale SLO scenarios: thousands of clients on a torus rack.
//!
//! The paper evaluates ThymesisFlow one workload at a time; a rack
//! serving millions of users sees all of them at once — YCSB-shaped
//! databases, memcached-shaped caches and search-shaped scan engines
//! sharing the same cables, with a zipf hotspot, a diurnal load curve
//! and the occasional dead link or dead donor. A [`FleetScenario`]
//! stages exactly that story on a 4×4 torus:
//!
//! 1. **Populate** — base leases attach with SLO contracts
//!    ([`Rack::attach_with_slo`]) across the torus, two of them
//!    fighting over one hot route; [`dcsim::churn`] deals extra
//!    tenants that arrive and leave as the phases play out. The
//!    scenario's simulated clients are dealt to leases by a
//!    [`ZipfSampler`], so a head lease soaks up a third of the fleet.
//! 2. **Calibrate** — a steady slice at the ladder's top load factor
//!    measures each lease's undisturbed p99/p99.9; contracts get
//!    `measured × margin` latency budgets plus an availability floor.
//! 3. **Ladder** — a [`PhaseClock`] walks diurnal phases
//!    (steady → peak → recovery). Each phase scales every class's
//!    closed-loop intensity by its load factor and may inject a chaos
//!    ladder at its opening: cut the hot route's interior link,
//!    degrade a bonded lane, crash a donor ([`Rack::crash_donor`]).
//!    Streams run across *all* borrower fabrics at once via
//!    [`Rack::run_fleet_streams`]; every window closes with a
//!    [`Rack::evaluate_slos`] judgement and a [`Recorder`] poll.
//! 4. **Report** — the run condenses into a [`FleetReport`]: per-lease
//!    p99/p99.9 load-to-use and availability, a per-phase breach
//!    ledger, and the fleet's hottest-link congestion snapshot
//!    ([`Rack::hottest_link`]).
//!
//! Every step is a pure function of `(scenario, seed)`: borrower
//! fabrics are independent event queues, so running them on 1 or 4
//! workers yields byte-identical reports — `tests/fleet_scenario.rs`
//! gates on exactly that.
//!
//! [`Rack::attach_with_slo`]: thymesisflow_core::rack::Rack::attach_with_slo
//! [`Rack::crash_donor`]: thymesisflow_core::rack::Rack::crash_donor
//! [`Rack::run_fleet_streams`]: thymesisflow_core::rack::Rack::run_fleet_streams
//! [`Rack::evaluate_slos`]: thymesisflow_core::rack::Rack::evaluate_slos
//! [`Rack::hottest_link`]: thymesisflow_core::rack::Rack::hottest_link
//! [`ZipfSampler`]: simkit::rng::ZipfSampler
//! [`PhaseClock`]: simkit::obs::PhaseClock
//! [`Recorder`]: simkit::obs::Recorder

use std::collections::BTreeMap;

use dcsim::churn::phase_churn;
use dcsim::trace::TraceParams;
use serde::Value;
use simkit::obs::{PhaseClock, Recorder};
use simkit::rng::{DetRng, ZipfSampler};
use simkit::time::SimTime;
use simkit::units::{f64_to_u64_saturating, GIB};
use thymesisflow_core::attach::{AttachRequest, LeaseId};
use thymesisflow_core::fabric::{ChaosPlan, SloSpec};
use thymesisflow_core::rack::{
    LeaseResolution, NodeConfig, Rack, RackBuilder, RackError,
};

/// Torus side length: every scenario runs on a `SIDE × SIDE` torus.
const SIDE: usize = 4;

/// Chaos events fire this far into their phase, so the phase's first
/// window always sees the disruption land mid-stream.
const CHAOS_LEAD: SimTime = SimTime::from_us(5);

/// The traffic shape a lease serves — the paper's application classes
/// reduced to their closed-loop fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficClass {
    /// YCSB/VoltDB-shaped: moderate outstanding window per client.
    Ycsb,
    /// Memcached-shaped: many small GET-sized requests in flight.
    Memcached,
    /// Search-shaped: few clients, deep scan windows.
    Search,
}

impl TrafficClass {
    /// Every class, in the rotation order leases are dealt.
    pub const ALL: [TrafficClass; 3] =
        [TrafficClass::Ycsb, TrafficClass::Memcached, TrafficClass::Search];

    /// The class's stable schema name.
    pub const fn name(self) -> &'static str {
        match self {
            TrafficClass::Ycsb => "ycsb",
            TrafficClass::Memcached => "memcached",
            TrafficClass::Search => "search",
        }
    }

    /// Outstanding cachelines per closed-loop thread.
    const fn window(self) -> u32 {
        match self {
            TrafficClass::Ycsb => 8,
            TrafficClass::Memcached => 4,
            TrafficClass::Search => 16,
        }
    }

    /// How many simulated clients one closed-loop thread stands in for.
    const fn clients_per_thread(self) -> f64 {
        match self {
            TrafficClass::Ycsb => 50.0,
            TrafficClass::Memcached => 40.0,
            TrafficClass::Search => 100.0,
        }
    }

    /// Ceiling on threads per lease (keeps one hot lease from starving
    /// the event queue).
    const fn max_threads(self) -> f64 {
        match self {
            TrafficClass::Ycsb => 16.0,
            TrafficClass::Memcached => 24.0,
            TrafficClass::Search => 8.0,
        }
    }
}

/// One rung of a phase's chaos ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetChaos {
    /// Cut the interior link of the hot lease's current route.
    CutHotRoute,
    /// Fail one bonded lane on the first link of the first bonded
    /// lease's route (a degradation, not an outage).
    DegradeHotLane,
    /// Crash this donor host; its leases fault and evacuate.
    CrashDonor(String),
}

/// One diurnal phase of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPhase {
    /// Phase name (lands in the breach ledger and report).
    pub name: String,
    /// Simulated phase length.
    pub duration: SimTime,
    /// Load factor scaling every class's client intensity.
    pub load: f64,
    /// Chaos injected as the phase opens.
    pub chaos: Vec<FleetChaos>,
}

impl FleetPhase {
    /// An undisturbed phase.
    pub fn new(name: &str, duration: SimTime, load: f64) -> Self {
        FleetPhase {
            name: name.to_string(),
            duration,
            load,
            chaos: Vec::new(),
        }
    }

    /// Adds a chaos rung to the phase's opening.
    pub fn with_chaos(mut self, chaos: FleetChaos) -> Self {
        self.chaos.push(chaos);
        self
    }
}

/// A fleet-scale scenario: the fleet's shape plus its phase ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetScenario {
    /// Scenario name (lands in the report).
    pub name: String,
    /// Master seed for every deterministic draw the scenario makes.
    pub seed: u64,
    /// Simulated clients dealt across the base leases.
    pub clients: u32,
    /// Zipf exponent of the client-to-lease hotspot skew.
    pub hot_theta: f64,
    /// SLO evaluation / recorder window length.
    pub window: SimTime,
    /// The diurnal phase ladder, walked in order.
    pub phases: Vec<FleetPhase>,
    /// Churning tenants dealt from the synthetic cluster trace.
    pub churn_tenants: usize,
    /// Latency budgets are `calibrated quantile × this margin`.
    pub p99_margin: f64,
    /// Availability floor every contract carries.
    pub availability_floor: f64,
}

impl FleetScenario {
    /// The canonical ladder: steady → peak-with-chaos → recovery, 2 000
    /// clients, a zipf(1.0) hotspot and a 12-tenant churn stream. The
    /// peak phase cuts the hot route, degrades a bonded lane and
    /// crashes donor `n23`.
    pub fn standard(seed: u64) -> Self {
        FleetScenario {
            name: "fleet-slo".to_string(),
            seed,
            clients: 2_000,
            hot_theta: 1.0,
            window: SimTime::from_us(20),
            phases: vec![
                FleetPhase::new("steady", SimTime::from_us(100), 1.0),
                FleetPhase::new("peak", SimTime::from_us(120), 1.25)
                    .with_chaos(FleetChaos::CutHotRoute)
                    .with_chaos(FleetChaos::DegradeHotLane)
                    .with_chaos(FleetChaos::CrashDonor("n23".to_string())),
                FleetPhase::new("recovery", SimTime::from_us(80), 0.6),
            ],
            churn_tenants: 12,
            p99_margin: 1.2,
            availability_floor: 0.999,
        }
    }

    /// [`FleetScenario::standard`] with every chaos rung removed — the
    /// undisturbed control arm that must finish with zero breaches.
    pub fn control(seed: u64) -> Self {
        let mut s = FleetScenario::standard(seed);
        s.name = "fleet-slo-control".to_string();
        for phase in &mut s.phases {
            phase.chaos.clear();
        }
        s
    }

    /// A shortened standard ladder for test suites: same shape and
    /// chaos, ~40% of the simulated time, still ≥ 1 000 clients.
    pub fn quick(seed: u64) -> Self {
        let mut s = FleetScenario::standard(seed);
        s.name = "fleet-slo-quick".to_string();
        s.clients = 1_200;
        s.churn_tenants = 8;
        s.phases = vec![
            FleetPhase::new("steady", SimTime::from_us(60), 1.0),
            FleetPhase::new("peak", SimTime::from_us(60), 1.25)
                .with_chaos(FleetChaos::CutHotRoute)
                .with_chaos(FleetChaos::DegradeHotLane)
                .with_chaos(FleetChaos::CrashDonor("n23".to_string())),
            FleetPhase::new("recovery", SimTime::from_us(40), 0.6),
        ];
        s
    }

    /// Runs the scenario on `workers` threads and condenses it into a
    /// [`FleetReport`]. The report is a pure function of the scenario:
    /// any worker count produces byte-identical JSON.
    ///
    /// # Errors
    ///
    /// Propagates rack assembly, attach and fabric failures.
    pub fn run(&self, workers: usize) -> Result<FleetReport, RackError> {
        let mut rack = build_torus()?;
        rack.set_observability(true);

        // ---- populate: base leases + the zipf client deal -----------
        let mut leases = base_leases(&mut rack, self.availability_floor)?;
        deal_clients(&mut leases, self.seed, self.clients, self.hot_theta);
        let hot = 0usize; // zipf key 0 is the most popular by construction
        rack.set_lease_telemetry(leases[hot].id, true)?;
        let mut recorder = Recorder::new(self.window, 64);
        let hot_borrower = leases[hot].borrower.clone();

        // ---- populate: churn tenants from the cluster trace ---------
        let schedule = phase_churn(
            &TraceParams::default(),
            self.seed ^ 0x5eed,
            self.churn_tenants,
            self.phases.len(),
        );
        let mut churn: BTreeMap<u64, ChurnLease> = BTreeMap::new();
        let mut churn_stats = ChurnStats::default();

        // ---- calibrate at the ladder's top load factor --------------
        let top_load = self
            .phases
            .iter()
            .map(|p| p.load)
            .fold(1.0f64, f64::max);
        let cal_loads = stream_loads(&leases, &churn, top_load);
        rack.run_fleet_streams(&cal_loads, self.window + self.window, workers)?;
        for lease in &leases {
            let Some((p99, p999)) = lease_quantiles(&rack, lease.id) else {
                continue;
            };
            rack.set_lease_slo(
                lease.id,
                SloSpec::new()
                    .p99(scale_budget(p99, self.p99_margin))
                    .p999(scale_budget(p999, self.p99_margin))
                    .availability(self.availability_floor),
            )?;
        }
        let _ = rack.evaluate_slos()?; // swallow the calibration window

        // ---- walk the ladder ----------------------------------------
        let clock = PhaseClock::new(
            self.phases
                .iter()
                .map(|p| (p.name.clone(), p.duration)),
        );
        let mut ledger: Vec<BreachEntry> = Vec::new();
        let mut phase_rows: Vec<PhaseSummary> = Vec::new();
        let mut cursor = SimTime::ZERO;
        for (phase, segment) in self.phases.iter().zip(clock.phases()) {
            // Tenant churn at the phase boundary.
            for tenant in &schedule {
                let index = phase_rows.len();
                if tenant.arrive_phase == index {
                    match attach_churn(&mut rack, tenant.id, tenant.mem_fraction, self.availability_floor) {
                        Ok(lease) => {
                            churn.insert(tenant.id, lease);
                            churn_stats.attached += 1;
                        }
                        Err(_) => churn_stats.skipped += 1,
                    }
                }
                if tenant.depart_phase == index {
                    if let Some(lease) = churn.remove(&tenant.id) {
                        rack.detach(lease.id)?;
                        churn_stats.detached += 1;
                    }
                }
            }
            // The phase's chaos ladder. Link-level rungs are fabric
            // events scheduled now and landing mid-window; donor
            // crashes are rack operations held until one undrained
            // slice has loads in flight for the crash to fault.
            let mut chaos_applied: Vec<String> = Vec::new();
            let mut crashes: Vec<&FleetChaos> = Vec::new();
            for rung in &phase.chaos {
                if matches!(rung, FleetChaos::CrashDonor(_)) {
                    crashes.push(rung);
                } else if let Some(note) =
                    inject_chaos(&mut rack, rung, &mut leases, &mut churn)?
                {
                    chaos_applied.push(note);
                }
            }
            // Window loop: run, poll, judge.
            let completed_before = fleet_completed(&rack, &leases, &churn);
            let mut windows = 0u64;
            let before = ledger.len();
            if !crashes.is_empty() {
                let slice = self.window.min(segment.end.saturating_sub(cursor));
                let loads = stream_loads(&leases, &churn, phase.load);
                if !loads.is_empty() {
                    rack.run_fleet_streams_undrained(&loads, slice, workers)?;
                    cursor = cursor + slice;
                    windows += 1;
                }
                for rung in crashes {
                    if let Some(note) =
                        inject_chaos(&mut rack, rung, &mut leases, &mut churn)?
                    {
                        chaos_applied.push(note);
                    }
                }
                // Judge the crash window right away so a dying lease's
                // final availability breach lands in this phase.
                push_breaches(&mut ledger, &phase.name, rack.evaluate_slos()?);
            }
            while cursor < segment.end {
                let slice = self.window.min(segment.end.saturating_sub(cursor));
                let loads = stream_loads(&leases, &churn, phase.load);
                if loads.is_empty() {
                    break;
                }
                rack.run_fleet_streams(&loads, slice, workers)?;
                cursor = cursor + slice;
                windows += 1;
                if let Some(fabric) = rack.fabric_mut(&hot_borrower) {
                    if recorder.due(fabric.now()) {
                        let snap = fabric.telemetry_snapshot();
                        recorder.record(snap);
                    }
                }
                push_breaches(&mut ledger, &phase.name, rack.evaluate_slos()?);
            }
            phase_rows.push(PhaseSummary {
                name: phase.name.clone(),
                load: phase.load,
                start_ns: segment.start.as_ns(),
                end_ns: segment.end.as_ns(),
                windows,
                completed: fleet_completed(&rack, &leases, &churn)
                    .saturating_sub(completed_before),
                breaches: (ledger.len() - before) as u64,
                chaos: chaos_applied,
            });
        }

        // ---- condense -----------------------------------------------
        let lease_rows = leases
            .iter()
            .map(|l| summarize_lease(&rack, l))
            .collect();
        let hottest = rack.hottest_link().map(|(host, link)| HottestLink {
            host,
            link: link.name.clone(),
            utilization: link.utilization,
            stall_ns: link.stall_ns,
            frames: link.frames(),
        });
        let retired_per_window: Vec<u64> = recorder
            .deltas("fabric.loads.retired")
            .iter()
            .map(|&(_, d)| d)
            .collect();
        Ok(FleetReport {
            scenario: self.name.clone(),
            seed: self.seed,
            clients: self.clients,
            topology: format!("{SIDE}x{SIDE}-torus"),
            leases: lease_rows,
            phases: phase_rows,
            breaches: ledger,
            hottest: hottest,
            churn: churn_stats,
            hot_lease_retired_per_window: retired_per_window,
        })
    }
}

/// A live base lease and its fleet bookkeeping.
#[derive(Debug, Clone)]
struct FleetLease {
    id: LeaseId,
    class: TrafficClass,
    borrower: String,
    donor: String,
    bonded: bool,
    clients: u64,
    /// Dead donor with no surviving capacity: excluded from loads.
    poisoned: bool,
}

/// A live churn lease.
#[derive(Debug, Clone)]
struct ChurnLease {
    id: LeaseId,
    poisoned: bool,
}

/// Aggregate churn accounting for the report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// Tenants that attached successfully.
    pub attached: u64,
    /// Tenants whose attach was rejected (capacity or path).
    pub skipped: u64,
    /// Tenants detached at their departure phase.
    pub detached: u64,
}

/// One breach, tagged with the phase it landed in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreachEntry {
    /// Phase name the breach was judged in.
    pub phase: String,
    /// Breaching lease id.
    pub lease: u64,
    /// Breach kind's schema name (`p99` / `p999` / `availability`).
    pub kind: String,
    /// Fabric instant of the judgement, nanoseconds.
    pub at_ns: u64,
    /// Human-readable magnitude (observed vs budget).
    pub detail: String,
}

/// One phase's roll-up.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSummary {
    /// Phase name.
    pub name: String,
    /// Load factor the phase ran at.
    pub load: f64,
    /// Scenario-clock open, nanoseconds.
    pub start_ns: u64,
    /// Scenario-clock close, nanoseconds.
    pub end_ns: u64,
    /// Stream windows the phase ran.
    pub windows: u64,
    /// Loads completed fleet-wide during the phase.
    pub completed: u64,
    /// Breaches judged during the phase.
    pub breaches: u64,
    /// Chaos rungs applied at the phase's opening (`kind:target`).
    pub chaos: Vec<String>,
}

/// One base lease's whole-run roll-up.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseSummary {
    /// Lease id (the replacement's id if the lease was evacuated).
    pub lease: u64,
    /// Traffic class name.
    pub class: String,
    /// Borrower host.
    pub borrower: String,
    /// Donor host currently serving the lease.
    pub donor: String,
    /// Simulated clients dealt to the lease.
    pub clients: u64,
    /// Whole-run p99 load-to-use, nanoseconds (0 if nothing completed).
    pub p99_ns: u64,
    /// Whole-run p99.9 load-to-use, nanoseconds.
    pub p999_ns: u64,
    /// Completed / (completed + faulted); 1.0 for an idle lease.
    pub availability: f64,
    /// Loads completed on the lease's current path.
    pub completed: u64,
    /// Loads faulted on the lease's current path.
    pub faulted: u64,
}

/// The fleet's hottest link across every borrower fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct HottestLink {
    /// Borrower host whose fabric carries the link.
    pub host: String,
    /// Topology link name.
    pub link: String,
    /// Exact busy-time utilization of the hottest channel (0..=1).
    pub utilization: f64,
    /// Nanoseconds frames spent credit-stalled at the link's hops.
    pub stall_ns: u64,
    /// Frames carried.
    pub frames: u64,
}

/// What a [`FleetScenario::run`] leaves behind: the structured fleet
/// report the example exports and CI gates on.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Scenario name.
    pub scenario: String,
    /// Master seed the run used.
    pub seed: u64,
    /// Simulated clients dealt across the base leases.
    pub clients: u32,
    /// Topology descriptor (`4x4-torus`).
    pub topology: String,
    /// Per-lease roll-ups, in lease order.
    pub leases: Vec<LeaseSummary>,
    /// Per-phase roll-ups, in ladder order.
    pub phases: Vec<PhaseSummary>,
    /// Every breach, in judgement order.
    pub breaches: Vec<BreachEntry>,
    /// The fleet's hottest link, if any traffic flowed.
    pub hottest: Option<HottestLink>,
    /// Churn accounting.
    pub churn: ChurnStats,
    /// The hot lease's loads-retired per recorder window.
    pub hot_lease_retired_per_window: Vec<u64>,
}

impl FleetReport {
    /// Schema version of [`FleetReport::to_value`].
    pub const SCHEMA: u64 = 1;

    /// Breach entries judged in phase `phase`.
    pub fn breaches_in(&self, phase: &str) -> Vec<&BreachEntry> {
        self.breaches.iter().filter(|b| b.phase == phase).collect()
    }

    /// The report as a schema-v1 JSON value.
    pub fn to_value(&self) -> Value {
        let leases = self
            .leases
            .iter()
            .map(|l| {
                Value::Map(vec![
                    ("lease".to_string(), Value::UInt(l.lease)),
                    ("class".to_string(), Value::Str(l.class.clone())),
                    ("borrower".to_string(), Value::Str(l.borrower.clone())),
                    ("donor".to_string(), Value::Str(l.donor.clone())),
                    ("clients".to_string(), Value::UInt(l.clients)),
                    ("p99_ns".to_string(), Value::UInt(l.p99_ns)),
                    ("p999_ns".to_string(), Value::UInt(l.p999_ns)),
                    ("availability".to_string(), Value::Float(l.availability)),
                    ("completed".to_string(), Value::UInt(l.completed)),
                    ("faulted".to_string(), Value::UInt(l.faulted)),
                ])
            })
            .collect();
        let phases = self
            .phases
            .iter()
            .map(|p| {
                Value::Map(vec![
                    ("phase".to_string(), Value::Str(p.name.clone())),
                    ("load".to_string(), Value::Float(p.load)),
                    ("start_ns".to_string(), Value::UInt(p.start_ns)),
                    ("end_ns".to_string(), Value::UInt(p.end_ns)),
                    ("windows".to_string(), Value::UInt(p.windows)),
                    ("completed".to_string(), Value::UInt(p.completed)),
                    ("breaches".to_string(), Value::UInt(p.breaches)),
                    (
                        "chaos".to_string(),
                        Value::Seq(p.chaos.iter().cloned().map(Value::Str).collect()),
                    ),
                ])
            })
            .collect();
        let breaches = self
            .breaches
            .iter()
            .map(|b| {
                Value::Map(vec![
                    ("phase".to_string(), Value::Str(b.phase.clone())),
                    ("lease".to_string(), Value::UInt(b.lease)),
                    ("kind".to_string(), Value::Str(b.kind.clone())),
                    ("at_ns".to_string(), Value::UInt(b.at_ns)),
                    ("detail".to_string(), Value::Str(b.detail.clone())),
                ])
            })
            .collect();
        let hottest = match &self.hottest {
            Some(h) => Value::Map(vec![
                ("host".to_string(), Value::Str(h.host.clone())),
                ("link".to_string(), Value::Str(h.link.clone())),
                ("utilization".to_string(), Value::Float(h.utilization)),
                ("stall_ns".to_string(), Value::UInt(h.stall_ns)),
                ("frames".to_string(), Value::UInt(h.frames)),
            ]),
            None => Value::Null,
        };
        Value::Map(vec![
            ("schema".to_string(), Value::UInt(Self::SCHEMA)),
            ("scenario".to_string(), Value::Str(self.scenario.clone())),
            ("seed".to_string(), Value::UInt(self.seed)),
            ("clients".to_string(), Value::UInt(u64::from(self.clients))),
            ("topology".to_string(), Value::Str(self.topology.clone())),
            ("leases".to_string(), Value::Seq(leases)),
            ("phases".to_string(), Value::Seq(phases)),
            ("breaches".to_string(), Value::Seq(breaches)),
            ("hottest_link".to_string(), hottest),
            (
                "churn".to_string(),
                Value::Map(vec![
                    ("tenants_attached".to_string(), Value::UInt(self.churn.attached)),
                    ("tenants_skipped".to_string(), Value::UInt(self.churn.skipped)),
                    ("tenants_detached".to_string(), Value::UInt(self.churn.detached)),
                ]),
            ),
            (
                "hot_lease_retired_per_window".to_string(),
                Value::Seq(
                    self.hot_lease_retired_per_window
                        .iter()
                        .map(|&d| Value::UInt(d))
                        .collect(),
                ),
            ),
        ])
    }

    /// The report as one JSON document (newline-terminated).
    ///
    /// # Panics
    ///
    /// Never in practice: the value contains no non-serializable nodes.
    pub fn to_json(&self) -> String {
        let mut json = serde_json::to_string(&self.to_value())
            .unwrap_or_else(|e| panic!("fleet report serializes: {e:?}"));
        json.push('\n');
        json
    }
}

/// Builds the `SIDE × SIDE` torus rack, cabled row- and column-wise.
fn build_torus() -> Result<Rack, RackError> {
    let mut builder = RackBuilder::new();
    for r in 0..SIDE {
        for c in 0..SIDE {
            builder = builder.node(NodeConfig::ac922(&node(r, c)));
        }
    }
    for r in 0..SIDE {
        for c in 0..SIDE {
            builder = builder
                .cable(&node(r, c), &node(r, (c + 1) % SIDE))
                .cable(&node(r, c), &node((r + 1) % SIDE, c));
        }
    }
    builder.build()
}

fn node(r: usize, c: usize) -> String {
    format!("n{r}{c}")
}

/// Attaches the base fleet: two leases contending over one hot route
/// plus one pair per remaining row, classes rotating, one bonded.
fn base_leases(rack: &mut Rack, floor: f64) -> Result<Vec<FleetLease>, RackError> {
    let plan: [(&str, &str, bool); 8] = [
        ("n00", "n02", false), // the hot lease (zipf key 0)
        ("n00", "n02", false), // its rival on the same route
        ("n10", "n12", true),  // bonded: the lane-degradation target
        ("n11", "n13", false),
        ("n20", "n22", false),
        ("n21", "n23", false), // donor n23: the crash target
        ("n30", "n32", false),
        ("n31", "n33", false),
    ];
    let mut leases = Vec::with_capacity(plan.len());
    for (i, &(borrower, donor, bonded)) in plan.iter().enumerate() {
        let mut req = AttachRequest::new(borrower, donor, 8 * GIB);
        if bonded {
            req = req.bonded();
        }
        let lease = rack.attach_with_slo(req, SloSpec::new().availability(floor))?;
        leases.push(FleetLease {
            id: lease.id(),
            class: TrafficClass::ALL[i % TrafficClass::ALL.len()],
            borrower: borrower.to_string(),
            donor: donor.to_string(),
            bonded,
            clients: 0,
            poisoned: false,
        });
    }
    Ok(leases)
}

/// Deals `clients` simulated clients across the base leases with zipf
/// hotspot skew: lease 0 is the head key.
fn deal_clients(leases: &mut [FleetLease], seed: u64, clients: u32, theta: f64) {
    let mut rng = DetRng::split_stream(seed, 0);
    let sampler = ZipfSampler::new(leases.len() as u64, theta);
    for _ in 0..clients {
        let key = sampler.sample(&mut rng) as usize;
        leases[key].clients += 1;
    }
}

/// Attaches one churn tenant: row-local, column 2 borrowing from
/// column 3, sized from the tenant's traced memory demand.
fn attach_churn(
    rack: &mut Rack,
    tenant: u64,
    mem_fraction: f64,
    floor: f64,
) -> Result<ChurnLease, RackError> {
    let row = (tenant as usize) % SIDE;
    let gib = f64_to_u64_saturating((mem_fraction * 8.0).ceil()).clamp(1, 8);
    let lease = rack.attach_with_slo(
        AttachRequest::new(&node(row, 2), &node(row, 3), gib * GIB),
        SloSpec::new().availability(floor),
    )?;
    Ok(ChurnLease {
        id: lease.id(),
        poisoned: false,
    })
}

/// The fleet's stream loads at one load factor: every live base lease
/// at its class intensity, every live churn lease as one light client.
fn stream_loads(
    leases: &[FleetLease],
    churn: &BTreeMap<u64, ChurnLease>,
    load: f64,
) -> Vec<(LeaseId, u32, u32)> {
    let mut out = Vec::with_capacity(leases.len() + churn.len());
    for lease in leases {
        if lease.poisoned {
            continue;
        }
        let class = lease.class;
        #[allow(clippy::cast_precision_loss)]
        let raw = lease.clients as f64 * load / class.clients_per_thread();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let threads = raw.round().clamp(1.0, class.max_threads()) as u32;
        out.push((lease.id, threads, class.window()));
    }
    for lease in churn.values() {
        if !lease.poisoned {
            out.push((lease.id, 1, 2));
        }
    }
    out
}

/// The lease's whole-run (p99, p999) in nanoseconds — `None` while the
/// path has no completions.
fn lease_quantiles(rack: &Rack, id: LeaseId) -> Option<(u64, u64)> {
    let (histogram, _) = lease_counters(rack, id)?;
    if histogram.0 == 0 {
        return None;
    }
    Some((histogram.1, histogram.2))
}

/// `(count, p99, p999)` of completions plus the path's fault count.
#[allow(clippy::type_complexity)]
fn lease_counters(rack: &Rack, id: LeaseId) -> Option<((u64, u64, u64), u64)> {
    let path = rack.lease_path(id)?;
    let lease = rack.leases().find(|l| l.id() == id)?;
    let fabric = rack.fabric(lease.compute())?;
    let histogram = fabric.completions(path).ok()?;
    let faulted = fabric.faults().iter().filter(|f| f.path == path).count() as u64;
    Some((
        (
            histogram.count(),
            histogram.quantile(0.99),
            histogram.quantile(0.999),
        ),
        faulted,
    ))
}

/// Tags judged breaches with their phase and appends them in order.
fn push_breaches(
    ledger: &mut Vec<BreachEntry>,
    phase: &str,
    breaches: Vec<thymesisflow_core::fabric::SloBreach>,
) {
    for b in breaches {
        ledger.push(BreachEntry {
            phase: phase.to_string(),
            lease: b.lease,
            kind: b.kind.name().to_string(),
            at_ns: b.at.as_ns(),
            detail: b.kind.to_string(),
        });
    }
}

/// Scales a calibrated quantile into a contract budget.
fn scale_budget(quantile_ns: u64, margin: f64) -> SimTime {
    #[allow(clippy::cast_precision_loss)]
    SimTime::from_ns_f64(quantile_ns as f64 * margin)
}

/// Total loads completed across every live fleet lease.
fn fleet_completed(
    rack: &Rack,
    leases: &[FleetLease],
    churn: &BTreeMap<u64, ChurnLease>,
) -> u64 {
    let mut total = 0u64;
    for lease in leases.iter().filter(|l| !l.poisoned) {
        if let Some(((count, _, _), _)) = lease_counters(rack, lease.id) {
            total += count;
        }
    }
    for lease in churn.values().filter(|l| !l.poisoned) {
        if let Some(((count, _, _), _)) = lease_counters(rack, lease.id) {
            total += count;
        }
    }
    total
}

/// Applies one chaos rung; returns the report note when it landed.
fn inject_chaos(
    rack: &mut Rack,
    rung: &FleetChaos,
    leases: &mut [FleetLease],
    churn: &mut BTreeMap<u64, ChurnLease>,
) -> Result<Option<String>, RackError> {
    match rung {
        FleetChaos::CutHotRoute => {
            let hot = &leases[0];
            let Some(link) = route_link(rack, hot.id, &hot.borrower, 1) else {
                return Ok(None);
            };
            let Some(fabric) = rack.fabric_mut(&hot.borrower) else {
                return Ok(None);
            };
            let at = fabric.now() + CHAOS_LEAD;
            fabric.schedule_chaos(&ChaosPlan::new().link_down_named(at, &link));
            Ok(Some(format!("link_down:{link}")))
        }
        FleetChaos::DegradeHotLane => {
            let Some(bonded) = leases.iter().find(|l| l.bonded && !l.poisoned) else {
                return Ok(None);
            };
            let id = bonded.id;
            let borrower = bonded.borrower.clone();
            let Some(link) = route_link(rack, id, &borrower, 0) else {
                return Ok(None);
            };
            let Some(fabric) = rack.fabric_mut(&borrower) else {
                return Ok(None);
            };
            let at = fabric.now() + CHAOS_LEAD;
            fabric.schedule_chaos(&ChaosPlan::new().lane_fail_named(at, &link));
            Ok(Some(format!("lane_fail:{link}")))
        }
        FleetChaos::CrashDonor(host) => {
            let faults = rack.crash_donor(host)?;
            let mut faulted_loads = 0usize;
            for fault in &faults {
                faulted_loads += fault.loads_faulted;
                match &fault.resolution {
                    LeaseResolution::Migrated { lease: new_id, donor } => {
                        for l in leases.iter_mut() {
                            if l.id == fault.lease {
                                l.id = *new_id;
                                l.donor = donor.clone();
                            }
                        }
                        for l in churn.values_mut() {
                            if l.id == fault.lease {
                                l.id = *new_id;
                            }
                        }
                    }
                    LeaseResolution::Poisoned => {
                        for l in leases.iter_mut() {
                            if l.id == fault.lease {
                                l.poisoned = true;
                            }
                        }
                        for l in churn.values_mut() {
                            if l.id == fault.lease {
                                l.poisoned = true;
                            }
                        }
                    }
                }
            }
            Ok(Some(format!(
                "donor_crash:{host} ({} leases, {faulted_loads} loads faulted)",
                faults.len()
            )))
        }
    }
}

/// The `index`-th link name of a lease's current route (clamped to the
/// route's last link).
fn route_link(rack: &Rack, id: LeaseId, borrower: &str, index: usize) -> Option<String> {
    let path = rack.lease_path(id)?;
    let fabric = rack.fabric(borrower)?;
    let names = fabric.topology_link_names();
    let route = fabric.topology_route(path)?;
    let link = route
        .links
        .get(index)
        .or_else(|| route.links.last())
        .copied()?;
    names.get(link).cloned()
}

/// One base lease's end-of-run roll-up.
fn summarize_lease(rack: &Rack, lease: &FleetLease) -> LeaseSummary {
    let (counters, faulted) =
        lease_counters(rack, lease.id).unwrap_or(((0, 0, 0), 0));
    let (completed, p99_ns, p999_ns) = counters;
    let total = completed + faulted;
    #[allow(clippy::cast_precision_loss)]
    let availability = if total == 0 {
        1.0
    } else {
        completed as f64 / total as f64
    };
    LeaseSummary {
        lease: lease.id.0,
        class: lease.class.name().to_string(),
        borrower: lease.borrower.clone(),
        donor: lease.donor.clone(),
        clients: lease.clients,
        p99_ns,
        p999_ns,
        availability,
        completed,
        faulted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_and_shapes_are_stable() {
        assert_eq!(TrafficClass::Ycsb.name(), "ycsb");
        assert_eq!(TrafficClass::Memcached.name(), "memcached");
        assert_eq!(TrafficClass::Search.name(), "search");
        for class in TrafficClass::ALL {
            assert!(class.window() >= 2);
            assert!(class.clients_per_thread() > 0.0);
            assert!(class.max_threads() >= 1.0);
        }
    }

    #[test]
    fn control_strips_every_chaos_rung() {
        let control = FleetScenario::control(1);
        assert!(control.phases.iter().all(|p| p.chaos.is_empty()));
        let standard = FleetScenario::standard(1);
        assert!(standard.phases.iter().any(|p| !p.chaos.is_empty()));
        assert_eq!(control.phases.len(), standard.phases.len());
    }

    #[test]
    fn quick_ladder_keeps_the_thousand_client_floor() {
        let quick = FleetScenario::quick(1);
        assert!(quick.clients >= 1_000);
        assert!(quick.phases.iter().any(|p| !p.chaos.is_empty()));
    }

    #[test]
    fn zipf_deal_concentrates_on_the_head_lease() {
        let mut rack = build_torus().expect("torus assembles");
        let mut leases = base_leases(&mut rack, 0.999).expect("base fleet attaches");
        deal_clients(&mut leases, 7, 2_000, 1.0);
        let total: u64 = leases.iter().map(|l| l.clients).sum();
        assert_eq!(total, 2_000);
        let head = leases[0].clients;
        assert!(
            leases.iter().all(|l| l.clients <= head),
            "lease 0 must be the head key"
        );
        // theta=1 over 8 keys: head share = ln(2)/ln(8) = 1/3.
        assert!(
            (500..=850).contains(&head),
            "head lease holds {head} of 2000 clients"
        );
    }
}
