//! Application models for the ThymesisFlow evaluation (paper §VI).
//!
//! The paper evaluates four application classes, each "occupying a
//! large-enough area on the resource proportionality continuum":
//!
//! * [`stream`] — sustainable memory bandwidth (STREAM, Fig. 5);
//! * [`ycsb`] + [`voltdb`] — an in-memory NewSQL database driven by the
//!   Yahoo! Cloud Serving Benchmark (Figs. 6 and 7);
//! * [`memcached`] — in-memory application-level caching under the
//!   Facebook "ETC" workload model (Fig. 8);
//! * [`search`] — a sharded search/analytics engine driven by the
//!   ESRally "nested" track (Fig. 9).
//!
//! All workloads run against a calibrated
//! [`MemoryModel`](thymesisflow_core::memmodel::MemoryModel) for each of
//! the five system configurations of §VI-A; [`loadgen`] provides the
//! shared closed-loop client + multi-worker server queueing simulator,
//! and [`runner`] the convenience front end.
//!
//! [`fleet`] scales the mix to rack reality: thousands of zipf-skewed
//! clients dealt across contracted leases on a 4×4 torus, with diurnal
//! load phases, tenant churn, a calibrated chaos ladder, and a
//! deterministic schema-v1 fleet report (see `DESIGN.md` §16).

pub mod fleet;
pub mod loadgen;
pub mod memcached;
pub mod runner;
pub mod search;
pub mod stream;
pub mod voltdb;
pub mod voltdb_sim;
pub mod ycsb;

pub use runner::WorkloadRunner;
