//! Closed-loop load generation and server queueing.
//!
//! Every request-level experiment in the paper shares one structure: a
//! client machine runs `N` closed-loop threads against a server whose
//! worker pool serves requests whose cost depends on the memory
//! configuration. [`ClosedLoopSim`] is that structure as a
//! discrete-event simulation; it produces the end-to-end latency
//! distribution (Fig. 8 is its CDF output) and the achieved throughput
//! (Figs. 7 and 9 report ops/sec).

use simkit::event::EventQueue;
use simkit::rng::DetRng;
use simkit::stats::Histogram;
use simkit::time::SimTime;

/// A server-side service model: how long does request `i` occupy a
/// worker?
pub trait Service {
    /// Service time of one request, drawn with the simulation's RNG.
    fn service_time(&mut self, rng: &mut DetRng) -> SimTime;

    /// Extra network hops before the server (e.g. a Twemproxy layer).
    /// Defaults to zero.
    fn extra_hop(&mut self, _rng: &mut DetRng) -> SimTime {
        SimTime::ZERO
    }
}

impl<F: FnMut(&mut DetRng) -> SimTime> Service for F {
    fn service_time(&mut self, rng: &mut DetRng) -> SimTime {
        self(rng)
    }
}

#[derive(Debug)]
enum Ev {
    ArriveAtServer { client: usize },
    ServiceDone { client: usize },
    BackAtClient { client: usize },
}

/// Results of one closed-loop run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Per-request end-to-end latency, nanoseconds.
    pub latency_ns: Histogram,
    /// Completed requests.
    pub completed: u64,
    /// Achieved throughput, operations per second.
    pub throughput_ops: f64,
    /// Wall-clock of the simulated run.
    pub elapsed: SimTime,
}

impl RunStats {
    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.latency_ns.mean() / 1000.0
    }

    /// Latency quantile in microseconds.
    pub fn quantile_us(&self, q: f64) -> f64 {
        self.latency_ns.quantile(q) as f64 / 1000.0
    }

    /// The latency CDF in microseconds.
    pub fn cdf_us(&self) -> Vec<(f64, f64)> {
        self.latency_ns
            .cdf()
            .into_iter()
            .map(|(ns, f)| (ns as f64 / 1000.0, f))
            .collect()
    }
}

/// The closed-loop client + FIFO multi-worker server simulator.
///
/// # Example
///
/// ```
/// use simkit::time::SimTime;
/// use simkit::rng::DetRng;
/// use workloads::loadgen::ClosedLoopSim;
///
/// let mut sim = ClosedLoopSim::new(8, 4, SimTime::from_us(100), 42);
/// let stats = sim.run(
///     &mut |_rng: &mut DetRng| SimTime::from_us(10),
///     2_000,
/// );
/// assert_eq!(stats.completed, 8 * 2_000);
/// // 8 clients, ~110 us per round trip: ~70k ops/s.
/// assert!(stats.throughput_ops > 50_000.0);
/// ```
#[derive(Debug)]
pub struct ClosedLoopSim {
    clients: usize,
    workers: usize,
    network_rtt: SimTime,
    rng: DetRng,
    rtt_jitter_frac: f64,
}

impl ClosedLoopSim {
    /// Creates a simulator: `clients` closed-loop client threads, a
    /// server pool of `workers`, and a base client↔server network round
    /// trip of `network_rtt`.
    ///
    /// # Panics
    ///
    /// Panics if `clients` or `workers` is zero.
    pub fn new(clients: usize, workers: usize, network_rtt: SimTime, seed: u64) -> Self {
        assert!(clients > 0 && workers > 0, "need clients and workers");
        ClosedLoopSim {
            clients,
            workers,
            network_rtt,
            rng: DetRng::new(seed),
            rtt_jitter_frac: 0.05,
        }
    }

    /// Sets the exponential jitter fraction applied to the network RTT.
    pub fn rtt_jitter(mut self, frac: f64) -> Self {
        self.rtt_jitter_frac = frac;
        self
    }

    fn sample_rtt(&mut self) -> SimTime {
        let jitter = self.rng.exp(self.rtt_jitter_frac);
        self.network_rtt * (1.0 + jitter)
    }

    /// Runs until every client has completed `requests_per_client`.
    pub fn run<S: Service>(&mut self, service: &mut S, requests_per_client: u64) -> RunStats {
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let mut issued_at = vec![SimTime::ZERO; self.clients];
        let mut remaining = vec![requests_per_client; self.clients];
        let mut latency = Histogram::new();
        let mut completed = 0u64;
        // The worker pool: earliest-free instants.
        let mut workers = vec![SimTime::ZERO; self.workers];

        // Kick every client.
        for c in 0..self.clients {
            issued_at[c] = SimTime::ZERO;
            let half = self.sample_rtt() / 2;
            queue.schedule(half, Ev::ArriveAtServer { client: c });
        }

        while let Some((now, ev)) = queue.pop() {
            match ev {
                Ev::ArriveAtServer { client } => {
                    let hop = service.extra_hop(&mut self.rng);
                    let svc = service.service_time(&mut self.rng);
                    // Earliest-free worker serves FIFO.
                    let (idx, free_at) = workers
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, t)| **t)
                        .map(|(i, t)| (i, *t))
                        .expect("pool non-empty");
                    let start = free_at.max(now + hop);
                    let done = start + svc;
                    workers[idx] = done;
                    queue.schedule(done, Ev::ServiceDone { client });
                }
                Ev::ServiceDone { client } => {
                    let half = self.sample_rtt() / 2;
                    queue.schedule(now + half, Ev::BackAtClient { client });
                }
                Ev::BackAtClient { client } => {
                    latency.record((now - issued_at[client]).as_ns());
                    completed += 1;
                    remaining[client] -= 1;
                    if remaining[client] > 0 {
                        issued_at[client] = now;
                        let half = self.sample_rtt() / 2;
                        queue.schedule(now + half, Ev::ArriveAtServer { client });
                    }
                }
            }
        }
        let elapsed = queue.now();
        RunStats {
            throughput_ops: completed as f64 / elapsed.as_secs_f64(),
            latency_ns: latency,
            completed,
            elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed(us: u64) -> impl FnMut(&mut DetRng) -> SimTime {
        move |_| SimTime::from_us(us)
    }

    #[test]
    fn uncontended_latency_is_rtt_plus_service() {
        let mut sim = ClosedLoopSim::new(1, 4, SimTime::from_us(100), 1).rtt_jitter(0.0);
        let stats = sim.run(&mut fixed(20), 100);
        assert_eq!(stats.completed, 100);
        let mean = stats.mean_us();
        assert!((119.0..=121.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn saturation_caps_throughput_at_pool_capacity() {
        // 4 workers x 10 us service: 400k ops/s ceiling regardless of
        // client count.
        let mut sim = ClosedLoopSim::new(64, 4, SimTime::from_us(50), 2);
        let stats = sim.run(&mut fixed(10), 500);
        assert!(
            (300_000.0..=410_000.0).contains(&stats.throughput_ops),
            "tput {}",
            stats.throughput_ops
        );
        // Queueing shows in latency: far above the uncontended 60 us.
        assert!(stats.mean_us() > 100.0, "mean {}", stats.mean_us());
    }

    #[test]
    fn more_workers_cut_queueing() {
        let mut slow = ClosedLoopSim::new(32, 2, SimTime::from_us(50), 3);
        let mut fast = ClosedLoopSim::new(32, 16, SimTime::from_us(50), 3);
        let s = slow.run(&mut fixed(10), 300);
        let f = fast.run(&mut fixed(10), 300);
        assert!(f.mean_us() < s.mean_us());
        assert!(f.throughput_ops > s.throughput_ops);
    }

    #[test]
    fn determinism() {
        let run = |seed| {
            let mut sim = ClosedLoopSim::new(8, 4, SimTime::from_us(80), seed);
            sim.run(&mut fixed(15), 200).latency_ns.mean()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn cdf_output_is_usable() {
        let mut sim = ClosedLoopSim::new(16, 4, SimTime::from_us(100), 4);
        let stats = sim.run(&mut fixed(10), 200);
        let cdf = stats.cdf_us();
        assert!(!cdf.is_empty());
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        assert!(stats.quantile_us(0.9) >= stats.quantile_us(0.5));
    }
}
