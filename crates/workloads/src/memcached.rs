//! In-memory application-level caching: a Memcached model under the
//! Facebook "ETC" workload (paper §VI-E, Fig. 8).
//!
//! The paper's load generator follows the statistical models of
//! Atikoglu et al. ("Workload Analysis of a Large-Scale Key-Value
//! Store"): GET/SET ratio 30:1, zipf-distributed keys (exponent 1.0,
//! following Breslau et al.), a 10 GiB cache over a 15 GiB key-value
//! space, 64 closed-loop client threads, ~80–82% hit ratio.
//!
//! Two parts:
//!
//! * [`SlabCache`] — an actual LRU cache (scaled 1/48 to keep the
//!   simulation fast; hit ratios are preserved because zipf mass depends
//!   on the cache/keyspace *ratio*);
//! * [`MemcachedService`] — the per-request service model used by the
//!   closed-loop simulator: base processing + the memory lines a GET
//!   touches, priced by the configuration's memory model. Memcached is
//!   "remarkably cache-friendly", so only a small fraction of touched
//!   lines reach memory — which is why its latency degrades so little
//!   under disaggregation.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use simkit::rng::{DetRng, ZipfSampler};
use simkit::time::SimTime;
use thymesisflow_core::config::SystemConfig;
use thymesisflow_core::memmodel::MemoryModel;

use crate::loadgen::{ClosedLoopSim, RunStats, Service};

/// An LRU key-value cache with byte-granular capacity accounting.
///
/// # Example
///
/// ```
/// use workloads::memcached::SlabCache;
///
/// let mut c = SlabCache::new(1024);
/// c.set(1, 600);
/// c.set(2, 600); // evicts key 1
/// assert!(!c.get(1));
/// assert!(c.get(2));
/// ```
#[derive(Debug, Clone)]
pub struct SlabCache {
    capacity: u64,
    used: u64,
    entries: BTreeMap<u64, (u32, u64)>, // key -> (size, stamp)
    lru: BTreeMap<u64, u64>,           // stamp -> key
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SlabCache {
    /// Creates a cache of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "cache needs capacity");
        SlabCache {
            capacity,
            used: 0,
            entries: BTreeMap::new(),
            lru: BTreeMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn touch(&mut self, key: u64) {
        self.clock += 1;
        if let Some((_, stamp)) = self.entries.get(&key).copied() {
            self.lru.remove(&stamp);
            self.lru.insert(self.clock, key);
            self.entries.get_mut(&key).expect("present").1 = self.clock;
        }
    }

    /// Looks a key up, refreshing its recency. Returns hit/miss.
    pub fn get(&mut self, key: u64) -> bool {
        if self.entries.contains_key(&key) {
            self.touch(key);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Inserts (or refreshes) a value of `size` bytes, evicting LRU
    /// entries as needed.
    ///
    /// # Panics
    ///
    /// Panics if a single value exceeds the cache capacity.
    pub fn set(&mut self, key: u64, size: u32) {
        assert!(size as u64 <= self.capacity, "value larger than cache");
        if let Some((old, stamp)) = self.entries.remove(&key) {
            self.lru.remove(&stamp);
            self.used -= old as u64;
        }
        while self.used + size as u64 > self.capacity {
            let (&stamp, &victim) = self.lru.iter().next().expect("cache over-full");
            self.lru.remove(&stamp);
            let (vsize, _) = self.entries.remove(&victim).expect("lru entry");
            self.used -= vsize as u64;
            self.evictions += 1;
        }
        self.clock += 1;
        self.entries.insert(key, (size, self.clock));
        self.lru.insert(self.clock, key);
        self.used += size as u64;
    }

    /// Observed hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Bytes in use.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Entries resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// The ETC workload model parameters (scaled 1/48 by default).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EtcParams {
    /// Distinct keys in the key-value space.
    pub keyspace: u64,
    /// Cache capacity in bytes.
    pub cache_bytes: u64,
    /// Zipf exponent for key popularity (the paper sets 1.0).
    pub zipf_theta: f64,
    /// GET:SET ratio (the paper uses 30:1).
    pub get_to_set: f64,
    /// Log-normal value-size parameters (ETC's small values).
    pub value_mu: f64,
    /// Log-normal sigma.
    pub value_sigma: f64,
}

impl Default for EtcParams {
    fn default() -> Self {
        EtcParams {
            // 15 GiB / 10 GiB at 1/48 scale with ~300 B mean values.
            keyspace: 1_000_000,
            cache_bytes: 24 << 20,
            zipf_theta: 1.0,
            get_to_set: 30.0,
            value_mu: 5.0,
            value_sigma: 0.9,
        }
    }
}

impl EtcParams {
    /// Samples a value size in bytes.
    pub fn value_size(&self, rng: &mut DetRng) -> u32 {
        rng.lognormal(self.value_mu, self.value_sigma).clamp(16.0, 65_536.0) as u32
    }
}

/// Service-model parameters for one GET/SET.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemcachedCost {
    /// Base server processing per request, µs (event loop, TCP, parse).
    pub base_us: f64,
    /// Cache lines touched per request (hash chain, item header, value
    /// copy, socket buffers).
    pub lines_touched: f64,
    /// Fraction of touched lines missing the LLC ("remarkably
    /// cache-friendly behavior due to high spatial and temporal
    /// locality").
    pub llc_miss_ratio: f64,
    /// Exponential service jitter mean, µs.
    pub jitter_us: f64,
    /// Mean extra microseconds per memory line under channel bonding
    /// (round-robin response reordering), drawn exponentially.
    pub bonding_reorder_us_per_line: f64,
}

impl Default for MemcachedCost {
    fn default() -> Self {
        MemcachedCost {
            base_us: 20.0,
            lines_touched: 206.0,
            llc_miss_ratio: 0.17,
            jitter_us: 5.0,
            bonding_reorder_us_per_line: 0.33,
        }
    }
}

/// The per-request service model driving [`ClosedLoopSim`].
#[derive(Debug)]
pub struct MemcachedService {
    cache: SlabCache,
    etc: EtcParams,
    cost: MemcachedCost,
    model: MemoryModel,
    zipf: ZipfSampler,
    rng: DetRng,
    gets: u64,
    sets: u64,
}

impl MemcachedService {
    /// Builds the service and warms the cache (the paper warms up with
    /// SETs "large enough to fill the cache").
    pub fn new(model: MemoryModel, etc: EtcParams, seed: u64) -> Self {
        let mut svc = MemcachedService {
            cache: SlabCache::new(etc.cache_bytes),
            zipf: ZipfSampler::new(etc.keyspace, etc.zipf_theta),
            rng: DetRng::new(seed),
            cost: MemcachedCost::default(),
            etc,
            model,
            gets: 0,
            sets: 0,
        };
        svc.warm_up();
        svc
    }

    fn warm_up(&mut self) {
        // Fill to capacity with popularity-ordered inserts.
        let mut key = 0u64;
        while self.cache.used_bytes() + 65_536 < self.etc.cache_bytes
            && key < self.etc.keyspace
        {
            let size = self.etc.value_size(&mut self.rng);
            self.cache.set(key, size);
            key += 1;
        }
    }

    /// The cache (for hit-ratio inspection).
    pub fn cache(&self) -> &SlabCache {
        &self.cache
    }

    /// GETs served.
    pub fn gets(&self) -> u64 {
        self.gets
    }

    /// SETs served.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    fn memory_us(&mut self, value_lines: f64) -> f64 {
        let lines = self.cost.lines_touched + value_lines;
        let to_memory = lines * self.cost.llc_miss_ratio;
        let mut us = to_memory * self.model.avg_load_latency_ns() / 1000.0;
        if self.model.config() == SystemConfig::BondingDisaggregated {
            // Round-robin bonding reorders responses; stragglers add an
            // exponential tail on top of the base path.
            us += self
                .rng
                .exp(self.cost.bonding_reorder_us_per_line * to_memory);
        }
        us
    }
}

impl Service for MemcachedService {
    fn service_time(&mut self, rng: &mut DetRng) -> SimTime {
        let key = self.zipf.sample(&mut self.rng);
        let is_get = self.rng.f64() < self.etc.get_to_set / (1.0 + self.etc.get_to_set);
        let us = if is_get {
            self.gets += 1;
            let hit = self.cache.get(key);
            let value_lines = if hit {
                let size = self.etc.value_size(&mut self.rng);
                size as f64 / 128.0
            } else {
                0.0 // miss: no value copy, just the lookup
            };
            self.cost.base_us + self.memory_us(value_lines)
        } else {
            self.sets += 1;
            let size = self.etc.value_size(&mut self.rng);
            self.cache.set(key, size);
            self.cost.base_us + self.memory_us(size as f64 / 128.0)
        };
        SimTime::from_ns_f64((us + rng.exp(self.cost.jitter_us)) * 1000.0)
    }

    fn extra_hop(&mut self, rng: &mut DetRng) -> SimTime {
        if self.model.config().is_scale_out() {
            // Twemproxy in front of the servers: two extra network legs,
            // proxy processing, and occasional proxy queueing spikes —
            // "an increase of transactions latency, 8% on average, and a
            // much higher variability".
            let base = 40.0 + rng.exp(15.0);
            let spike = if rng.chance(0.18) { rng.exp(280.0) } else { 0.0 };
            SimTime::from_ns_f64((base + spike) * 1000.0)
        } else {
            SimTime::ZERO
        }
    }
}

/// The full Fig. 8 experiment: 64 clients, one configuration.
#[derive(Debug)]
pub struct MemcachedBench {
    /// Client threads (the paper spawns 64).
    pub clients: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Requests per client (the paper issues 1 M per thread; scale
    /// accordingly for test speed).
    pub requests_per_client: u64,
}

impl Default for MemcachedBench {
    fn default() -> Self {
        MemcachedBench {
            clients: 64,
            workers: 8,
            requests_per_client: 2_000,
        }
    }
}

impl MemcachedBench {
    /// Runs the experiment for one configuration; returns the latency
    /// stats and the service (for hit-ratio checks).
    pub fn run(&self, model: MemoryModel, seed: u64) -> (RunStats, MemcachedService) {
        let client_rtt = SimTime::from_ns_f64(model.params().client_rtt_us * 1000.0);
        let mut service = MemcachedService::new(model, EtcParams::default(), seed);
        let mut sim = ClosedLoopSim::new(self.clients, self.workers, client_rtt, seed ^ 0xFEED);
        let stats = sim.run(&mut service, self.requests_per_client);
        (stats, service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thymesisflow_core::params::DatapathParams;

    fn model(c: SystemConfig) -> MemoryModel {
        MemoryModel::new(DatapathParams::prototype(), c)
    }

    fn quick() -> MemcachedBench {
        MemcachedBench {
            clients: 32,
            workers: 8,
            requests_per_client: 800,
        }
    }

    #[test]
    fn lru_cache_semantics() {
        let mut c = SlabCache::new(1000);
        c.set(1, 400);
        c.set(2, 400);
        assert!(c.get(1)); // refresh 1
        c.set(3, 400); // evicts 2 (LRU)
        assert!(c.get(1));
        assert!(!c.get(2));
        assert!(c.get(3));
        assert_eq!(c.evictions(), 1);
        assert!(c.used_bytes() <= 1000);
    }

    #[test]
    fn set_replaces_in_place() {
        let mut c = SlabCache::new(1000);
        c.set(1, 400);
        c.set(1, 600);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 600);
    }

    #[test]
    fn hit_ratio_matches_the_paper_envelope() {
        // "We obtain an average hit ratio varying from 80% to 82%, close
        // to the 81% value reported in [56]."
        let (_, svc) = quick().run(model(SystemConfig::Local), 11);
        let hr = svc.cache().hit_ratio();
        assert!((0.76..=0.86).contains(&hr), "hit ratio {hr}");
    }

    #[test]
    fn fig8_latency_ordering() {
        let mean = |c| quick().run(model(c), 17).0.mean_us();
        let local = mean(SystemConfig::Local);
        let inter = mean(SystemConfig::Interleaved);
        let single = mean(SystemConfig::SingleDisaggregated);
        let bonding = mean(SystemConfig::BondingDisaggregated);
        let scale = mean(SystemConfig::ScaleOut);
        // Paper: 600 / 614 / 635 / 650 / 713 µs.
        assert!(local < inter && inter < single && single < bonding && bonding < scale,
            "ordering: {local:.0} {inter:.0} {single:.0} {bonding:.0} {scale:.0}");
        assert!((540.0..=660.0).contains(&local), "local {local}");
        assert!((640.0..=800.0).contains(&scale), "scale-out {scale}");
        // ThymesisFlow configs stay within ~10% of local ("an average
        // increase in latency of up-to 7%").
        assert!(bonding / local < 1.12, "bonding {bonding} vs local {local}");
    }

    #[test]
    fn fig8_tail_behaviour() {
        let run = |c| quick().run(model(c), 23).0;
        let local = run(SystemConfig::Local);
        let bonding = run(SystemConfig::BondingDisaggregated);
        let scale = run(SystemConfig::ScaleOut);
        let tail = |s: &RunStats| s.quantile_us(0.9) / s.mean_us();
        // Local is the most consistent; bonding and especially scale-out
        // degrade at the tail.
        assert!(tail(&local) < tail(&bonding), "local tail vs bonding");
        assert!(tail(&local) < tail(&scale), "local tail vs scale-out");
        assert!(tail(&scale) > 1.12, "scale-out p90/mean {}", tail(&scale));
    }

    #[test]
    fn get_set_ratio_respected() {
        let (_, svc) = quick().run(model(SystemConfig::Local), 31);
        let ratio = svc.gets() as f64 / svc.sets().max(1) as f64;
        assert!((24.0..=37.0).contains(&ratio), "GET:SET {ratio}");
    }

    #[test]
    #[should_panic(expected = "value larger than cache")]
    fn oversized_value_panics() {
        let mut c = SlabCache::new(100);
        c.set(1, 200);
    }
}
