//! Convenience front end: build the memory models and run any workload
//! against any configuration.

use thymesisflow_core::config::SystemConfig;
use thymesisflow_core::memmodel::MemoryModel;
use thymesisflow_core::params::DatapathParams;

/// Runs workloads across the paper's system configurations.
#[derive(Debug, Clone)]
pub struct WorkloadRunner {
    params: DatapathParams,
}

impl Default for WorkloadRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkloadRunner {
    /// A runner with the prototype calibration.
    pub fn new() -> Self {
        WorkloadRunner {
            params: DatapathParams::prototype(),
        }
    }

    /// A runner with custom calibration.
    pub fn with_params(params: DatapathParams) -> Self {
        WorkloadRunner { params }
    }

    /// The calibration in use.
    pub fn params(&self) -> &DatapathParams {
        &self.params
    }

    /// The memory model for a configuration.
    pub fn model(&self, config: SystemConfig) -> MemoryModel {
        MemoryModel::new(self.params.clone(), config)
    }

    /// STREAM across every configuration (Fig. 5 rows).
    pub fn stream(
        &self,
        threads: u32,
    ) -> Vec<(SystemConfig, Vec<crate::stream::StreamResult>)> {
        SystemConfig::THYMESISFLOW
            .iter()
            .map(|&c| {
                (
                    c,
                    crate::stream::StreamBench::paper(threads).run(&self.model(c)),
                )
            })
            .collect()
    }

    /// VoltDB throughput for one workload across every configuration
    /// (Fig. 7 bars).
    pub fn voltdb_throughput(
        &self,
        workload: crate::ycsb::YcsbWorkload,
        partitions: u32,
    ) -> Vec<(SystemConfig, f64)> {
        SystemConfig::ALL
            .iter()
            .map(|&c| {
                (
                    c,
                    crate::voltdb::VoltDb::new(self.model(c), partitions)
                        .throughput_ops(workload),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ycsb::YcsbWorkload;

    #[test]
    fn runner_covers_all_configs() {
        let r = WorkloadRunner::new();
        let tput = r.voltdb_throughput(YcsbWorkload::A, 32);
        assert_eq!(tput.len(), 5);
        let stream = r.stream(8);
        assert_eq!(stream.len(), 3);
        for (_, rows) in stream {
            assert_eq!(rows.len(), 4);
        }
    }
}
