//! A sharded search/analytics engine model (paper §VI-F, Fig. 9).
//!
//! Elasticsearch stores JSON documents in an index subdivided into
//! *shards* — each a fully functional index that can live on different
//! cores or nodes; per-node thread pools queue operations by type. The
//! paper drives it with the ESRally "nested" track (a StackOverflow
//! dump) and reports four challenges:
//!
//! * **RTQ** — questions with a random tag (posting-list scan + score);
//! * **RNQIHBS** — questions with ≥100 answers before a random date
//!   (nested filter join, the heaviest);
//! * **RSTQ** — tag query with descending date sort;
//! * **MA** — match-all (cheap).
//!
//! Two layers:
//!
//! * [`InvertedIndex`] — an actual sharded inverted index over a
//!   synthetic StackOverflow-like corpus, with per-query touched-line
//!   accounting (validates the cost ratios the performance model uses);
//! * [`Elasticsearch`] — the throughput model: a work-conserving thread
//!   pool whose per-query busy time combines CPU work and memory lines
//!   priced by the configuration, a shard-coordination term that makes
//!   the synchronisation-heavy challenges degrade as shards scale, and
//!   interconnect bandwidth caps that bite the streaming RTQ challenge.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use simkit::rng::{DetRng, ZipfSampler};
use thymesisflow_core::config::SystemConfig;
use thymesisflow_core::memmodel::MemoryModel;

/// A document: a StackOverflow-style question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Doc {
    /// Document id.
    pub id: u32,
    /// Tag (term) id.
    pub tag: u32,
    /// Number of answers.
    pub answers: u32,
    /// Creation date (days since epoch).
    pub date: u32,
}

/// A sharded inverted index with touched-line accounting.
#[derive(Debug)]
pub struct InvertedIndex {
    shards: Vec<Shard>,
}

#[derive(Debug, Default)]
struct Shard {
    postings: BTreeMap<u32, Vec<u32>>, // tag -> doc ids
    docs: Vec<Doc>,
}

/// What one query touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryWork {
    /// Documents examined.
    pub docs_examined: u64,
    /// Matches returned.
    pub matches: u64,
    /// Cache lines touched (postings + doc metadata + sort buffers).
    pub lines: u64,
}

impl InvertedIndex {
    /// Builds a synthetic corpus: `docs` documents over `tags` tags with
    /// zipf-distributed tag popularity, spread over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn synthesize(docs: u32, tags: u32, shards: u32, seed: u64) -> Self {
        assert!(docs > 0 && tags > 0 && shards > 0, "empty corpus");
        let mut rng = DetRng::new(seed);
        let zipf = ZipfSampler::new(tags as u64, 1.0);
        let mut shard_vec: Vec<Shard> = (0..shards).map(|_| Shard::default()).collect();
        for id in 0..docs {
            let tag = zipf.sample(&mut rng) as u32;
            let answers = (rng.lognormal(1.0, 1.2) as u32).min(500);
            let date = rng.range(0, 5_000) as u32;
            let doc = Doc {
                id,
                tag,
                answers,
                date,
            };
            let s = &mut shard_vec[(id % shards) as usize];
            s.postings.entry(tag).or_default().push(doc.id);
            s.docs.push(doc);
        }
        InvertedIndex { shards: shard_vec }
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total documents.
    pub fn doc_count(&self) -> usize {
        self.shards.iter().map(|s| s.docs.len()).sum()
    }

    /// RTQ: all questions with a tag.
    pub fn random_tag_query(&self, tag: u32) -> QueryWork {
        let mut w = QueryWork::default();
        for s in &self.shards {
            if let Some(list) = s.postings.get(&tag) {
                w.docs_examined += list.len() as u64;
                w.matches += list.len() as u64;
                // Posting list streaming + one doc-values line per hit.
                w.lines += list.len() as u64 / 16 + list.len() as u64;
            }
        }
        w
    }

    /// RNQIHBS: questions with ≥ `min_answers` answers created before
    /// `date` (the nested-filter join scans doc values of every doc).
    pub fn answers_before(&self, min_answers: u32, date: u32) -> QueryWork {
        let mut w = QueryWork::default();
        for s in &self.shards {
            for d in &s.docs {
                w.docs_examined += 1;
                // Two doc-value fields per doc examined.
                w.lines += 2;
                if d.answers >= min_answers && d.date < date {
                    w.matches += 1;
                    w.lines += 4; // fetch
                }
            }
        }
        w
    }

    /// RSTQ: tag query with a descending date sort (adds a sort-buffer
    /// line per match).
    pub fn sorted_tag_query(&self, tag: u32) -> QueryWork {
        let mut w = self.random_tag_query(tag);
        w.lines += w.matches * 2; // sort keys + heap traffic
        w
    }

    /// MA: match-all returns the top page without scanning.
    pub fn match_all(&self) -> QueryWork {
        QueryWork {
            docs_examined: 10 * self.shards.len() as u64,
            matches: 10 * self.shards.len() as u64,
            lines: 30 * self.shards.len() as u64,
        }
    }
}

/// The four "nested" track challenges the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Challenge {
    /// Random tag query.
    Rtq,
    /// Random nested query: ≥100 answers before a random date.
    Rnqihbs,
    /// Random sorted tag query.
    Rstq,
    /// Match-all.
    Ma,
}

impl Challenge {
    /// All four, in the paper's Fig. 9 order.
    pub const ALL: [Challenge; 4] = [
        Challenge::Rnqihbs,
        Challenge::Rtq,
        Challenge::Rstq,
        Challenge::Ma,
    ];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Challenge::Rtq => "RTQ",
            Challenge::Rnqihbs => "RNQIHBS",
            Challenge::Rstq => "RSTQ",
            Challenge::Ma => "MA",
        }
    }

    /// Whether shard scaling degrades this challenge (tight cross-shard
    /// synchronisation): RNQIHBS, RSTQ and MA in the paper's analysis.
    pub fn is_sync_heavy(self) -> bool {
        !matches!(self, Challenge::Rtq)
    }

    fn cost(self) -> ChallengeCost {
        match self {
            Challenge::Rtq => ChallengeCost {
                cpu_ms: 14.0,
                mem_lines: 250_000.0,
                coord_ms_per_shard: 0.1,
                scale_out_efficiency: 0.70,
                bandwidth_bound: true,
            },
            Challenge::Rnqihbs => ChallengeCost {
                cpu_ms: 400.0,
                mem_lines: 1_200_000.0,
                coord_ms_per_shard: 2.0,
                scale_out_efficiency: 0.55,
                bandwidth_bound: false,
            },
            Challenge::Rstq => ChallengeCost {
                cpu_ms: 250.0,
                mem_lines: 900_000.0,
                coord_ms_per_shard: 1.2,
                scale_out_efficiency: 0.55,
                bandwidth_bound: false,
            },
            Challenge::Ma => ChallengeCost {
                cpu_ms: 15.0,
                mem_lines: 10_000.0,
                coord_ms_per_shard: 0.15,
                scale_out_efficiency: 0.55,
                bandwidth_bound: false,
            },
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ChallengeCost {
    cpu_ms: f64,
    mem_lines: f64,
    coord_ms_per_shard: f64,
    scale_out_efficiency: f64,
    bandwidth_bound: bool,
}

/// Engine-level model parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchParams {
    /// Search-pool threads per node.
    pub pool_threads: u32,
    /// Core clock, GHz.
    pub ghz: f64,
    /// LLC miss ratio of touched lines.
    pub miss_ratio: f64,
    /// Memory-level parallelism of scoring loops.
    pub overlap: f64,
    /// Latency-scaling exponent of the overlap (scoring has dependent
    /// loads, so longer latencies hide less than streaming code: lower
    /// than the 0.45 the database model uses).
    pub overlap_exponent: f64,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            pool_threads: 32,
            ghz: 3.8,
            miss_ratio: 0.6,
            overlap: 3.0,
            overlap_exponent: 0.2,
        }
    }
}

/// The Fig. 9 throughput model.
#[derive(Debug, Clone)]
pub struct Elasticsearch {
    params: SearchParams,
    model: MemoryModel,
    shards: u32,
}

impl Elasticsearch {
    /// Creates the engine model with `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(model: MemoryModel, shards: u32) -> Self {
        assert!(shards > 0, "need at least one shard");
        Elasticsearch {
            params: SearchParams::default(),
            model,
            shards,
        }
    }

    /// Overrides the calibration.
    pub fn with_params(mut self, params: SearchParams) -> Self {
        self.params = params;
        self
    }

    /// Per-touched-line memory cost in nanoseconds for this
    /// configuration.
    fn line_ns(&self) -> f64 {
        let p = &self.params;
        let lat = self.model.avg_load_latency_ns();
        let local = self.model.params().local_load_latency().as_ns_f64();
        let eff_overlap = p.overlap * (lat / local).max(1.0).powf(p.overlap_exponent);
        p.miss_ratio * lat / eff_overlap
    }

    /// Busy milliseconds of one query.
    fn busy_ms(&self, c: Challenge) -> f64 {
        let cost = c.cost();
        let mut mem_ms = cost.mem_lines * self.line_ns() * 1e-6;
        if self.model.config() == SystemConfig::BondingDisaggregated {
            // Scans keep the channel busy; the second bonded channel
            // relieves queueing, trimming the effective line cost.
            mem_ms *= 0.92;
        }
        cost.cpu_ms + mem_ms + cost.coord_ms_per_shard * self.shards as f64
    }

    /// Interconnect bandwidth cap on query throughput, ops/s
    /// (`infinity` when the challenge is not bandwidth bound or the
    /// configuration is local).
    fn bandwidth_cap(&self, c: Challenge) -> f64 {
        let cost = c.cost();
        if !cost.bandwidth_bound {
            return f64::INFINITY;
        }
        let remote = self.model.remote_capacity_bytes();
        if remote <= 0.0 {
            return f64::INFINITY;
        }
        // Posting-list scans stream *every* touched line over the
        // interconnect (hardware prefetch fetches the misses' neighbours
        // too), so the cap uses the full line footprint.
        let bytes_per_query = cost.mem_lines * 128.0 * self.model.remote_fraction();
        // Interleaved only moves half its lines over the channel.
        remote / bytes_per_query.max(1.0)
    }

    /// Challenge throughput, operations per second (Fig. 9 bars).
    pub fn throughput_ops(&self, c: Challenge) -> f64 {
        let cost = c.cost();
        let (threads, eff) = if self.model.config().is_scale_out() {
            (
                self.params.pool_threads * 2,
                cost.scale_out_efficiency,
            )
        } else {
            (self.params.pool_threads, 1.0)
        };
        let worker_bound = threads as f64 * eff / (self.busy_ms(c) * 1e-3);
        worker_bound.min(self.bandwidth_cap(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thymesisflow_core::params::DatapathParams;

    fn es(c: SystemConfig, shards: u32) -> Elasticsearch {
        Elasticsearch::new(MemoryModel::new(DatapathParams::prototype(), c), shards)
    }

    #[test]
    fn index_substrate_answers_queries() {
        let idx = InvertedIndex::synthesize(50_000, 500, 5, 1);
        assert_eq!(idx.doc_count(), 50_000);
        assert_eq!(idx.shard_count(), 5);
        // Popular tag 0 has a long posting list.
        let hot = idx.random_tag_query(0);
        let cold = idx.random_tag_query(499);
        assert!(hot.matches > cold.matches);
        assert!(hot.lines > 0);
        // The nested filter examines every doc.
        let nested = idx.answers_before(100, 2_500);
        assert_eq!(nested.docs_examined, 50_000);
        assert!(nested.matches < 5_000);
        // Sorting costs more lines than the plain query.
        assert!(idx.sorted_tag_query(0).lines > hot.lines);
        // Match-all touches almost nothing.
        assert!(idx.match_all().lines < 1_000);
    }

    #[test]
    fn index_cost_ratios_back_the_model() {
        // The model charges RNQIHBS >> RSTQ > RTQ >> MA; the substrate's
        // touched-line accounting should order the same way.
        let idx = InvertedIndex::synthesize(100_000, 300, 5, 2);
        let rtq = idx.random_tag_query(0).lines;
        let nested = idx.answers_before(100, 4_000).lines;
        let sorted = idx.sorted_tag_query(0).lines;
        let ma = idx.match_all().lines;
        assert!(nested > sorted && sorted > rtq && rtq > ma);
    }

    #[test]
    fn fig9_rtq_scale_out_wins_and_single_collapses() {
        let t = |c| es(c, 32).throughput_ops(Challenge::Rtq);
        let local = t(SystemConfig::Local);
        let scale = t(SystemConfig::ScaleOut);
        let single = t(SystemConfig::SingleDisaggregated);
        let bonding = t(SystemConfig::BondingDisaggregated);
        let inter = t(SystemConfig::Interleaved);
        // "For the RTQ challenge and scale-out configuration,
        // Elasticsearch benefits from the extra computational resources
        // and outperforms any other configuration, including local."
        assert!(scale > local, "scale-out {scale} vs local {local}");
        // All ThymesisFlow configurations fall well below local
        // (paper: −58.33%, −42.65%, −75.65%).
        for (name, v) in [("interleaved", inter), ("bonding", bonding), ("single", single)] {
            let drop = 1.0 - v / local;
            assert!(drop > 0.35, "{name} only dropped {drop}");
        }
        // Single-disaggregated is the worst (paper: −75.65%).
        assert!(single < bonding && single < inter);
        let drop = 1.0 - single / local;
        assert!((0.6..=0.9).contains(&drop), "single drop {drop}");
    }

    #[test]
    fn fig9_sync_heavy_ordering() {
        // "The scale-out configuration outperforms the interleaved,
        // bonding-disaggregated and single-disaggregated configurations
        // by 17.95%, 41.26%, 60.61% on average."
        for ch in [Challenge::Rnqihbs, Challenge::Rstq] {
            let t = |c| es(c, 32).throughput_ops(ch);
            let scale = t(SystemConfig::ScaleOut);
            let inter = t(SystemConfig::Interleaved);
            let bonding = t(SystemConfig::BondingDisaggregated);
            let single = t(SystemConfig::SingleDisaggregated);
            assert!(scale > inter && inter > bonding && bonding > single, "{ch:?}");
            let adv = |x: f64| (scale / x - 1.0) * 100.0;
            assert!(adv(inter) < adv(bonding) && adv(bonding) < adv(single), "{ch:?}");
        }
    }

    #[test]
    fn fig9_match_all_is_config_insensitive() {
        // "For the MA challenge, the configurations that utilise our
        // architecture offer similar performance with the local and
        // scale-out ones."
        let t = |c| es(c, 32).throughput_ops(Challenge::Ma);
        let local = t(SystemConfig::Local);
        for c in SystemConfig::ALL {
            let rel = (t(c) - local).abs() / local;
            assert!(rel < 0.25, "{c}: deviates {rel}");
        }
    }

    #[test]
    fn shard_scaling_degrades_sync_heavy_challenges() {
        for ch in Challenge::ALL {
            let five = es(SystemConfig::Local, 5).throughput_ops(ch);
            let many = es(SystemConfig::Local, 32).throughput_ops(ch);
            if ch.is_sync_heavy() {
                assert!(many < five, "{ch:?}: {many} !< {five}");
            }
        }
    }

    #[test]
    fn throughput_magnitudes_match_fig9_axes() {
        // Fig. 9 axes: RNQIHBS tops ~75, RTQ ~1k, RSTQ ~150, MA ~2.1k.
        let t = |ch| es(SystemConfig::Local, 5).throughput_ops(ch);
        assert!((30.0..=120.0).contains(&t(Challenge::Rnqihbs)));
        assert!((400.0..=3000.0).contains(&t(Challenge::Rtq)));
        assert!((60.0..=250.0).contains(&t(Challenge::Rstq)));
        assert!((800.0..=4000.0).contains(&t(Challenge::Ma)));
    }
}
