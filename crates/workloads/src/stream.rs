//! The STREAM sustainable-memory-bandwidth benchmark (paper §VI-C,
//! Fig. 5).
//!
//! "We configured STREAM to use 160 million array elements, requiring a
//! total memory of 3.66 GiB, which is well beyond the system cache
//! size." Each run executes the four kernels, confined to 4, 8 and 16
//! hardware threads via OpenMP, across the memory configurations.

use serde::{Deserialize, Serialize};
use thymesisflow_core::memmodel::MemoryModel;

/// The four STREAM kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Kernel {
    /// `c[i] = a[i]` — 16 B/iter (1 read, 1 write), 0 FLOPs.
    Copy,
    /// `b[i] = s*c[i]` — 16 B/iter, 1 FLOP.
    Scale,
    /// `c[i] = a[i] + b[i]` — 24 B/iter (2 reads, 1 write), 1 FLOP.
    Add,
    /// `a[i] = b[i] + s*c[i]` — 24 B/iter, 2 FLOPs.
    Triad,
}

impl Kernel {
    /// All four kernels in STREAM's reporting order.
    pub const ALL: [Kernel; 4] = [Kernel::Copy, Kernel::Scale, Kernel::Add, Kernel::Triad];

    /// Bytes moved per loop iteration.
    pub fn bytes_per_iter(self) -> u32 {
        match self {
            Kernel::Copy | Kernel::Scale => 16,
            Kernel::Add | Kernel::Triad => 24,
        }
    }

    /// Floating-point operations per iteration.
    pub fn flops_per_iter(self) -> u32 {
        match self {
            Kernel::Copy => 0,
            Kernel::Scale | Kernel::Add => 1,
            Kernel::Triad => 2,
        }
    }

    /// Read streams feeding the prefetcher.
    pub fn read_streams(self) -> u32 {
        match self {
            Kernel::Copy | Kernel::Scale => 1,
            Kernel::Add | Kernel::Triad => 2,
        }
    }

    /// Effective memory-level-parallelism scale of the kernel: more
    /// concurrent read streams extract slightly more MLP; FLOPs steal
    /// issue slots from the prefetch engine.
    pub fn mlp_scale(self) -> f64 {
        let streams = 1.0 + 0.05 * (self.read_streams() as f64 - 1.0);
        let flop_drag = 1.0 - 0.02 * self.flops_per_iter() as f64;
        streams * flop_drag
    }

    /// STREAM's reporting label.
    pub fn label(self) -> &'static str {
        match self {
            Kernel::Copy => "copy",
            Kernel::Scale => "scale",
            Kernel::Add => "add",
            Kernel::Triad => "triad",
        }
    }
}

/// One STREAM result row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamResult {
    /// The kernel.
    pub kernel: Kernel,
    /// Threads used.
    pub threads: u32,
    /// Sustained bandwidth, GiB/s.
    pub gib_per_sec: f64,
}

/// The benchmark configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamBench {
    /// Array elements (the paper uses 160 million).
    pub elements: u64,
    /// OpenMP thread count.
    pub threads: u32,
}

impl StreamBench {
    /// The paper's setup: 160 M elements (3.66 GiB total).
    pub fn paper(threads: u32) -> Self {
        StreamBench {
            elements: 160_000_000,
            threads,
        }
    }

    /// Total working-set bytes (three arrays of f64).
    pub fn working_set_bytes(&self) -> u64 {
        self.elements * 8 * 3
    }

    /// Runs all four kernels against a memory model.
    ///
    /// # Panics
    ///
    /// Panics if the working set does not dwarf the cache (the paper
    /// chose 3.66 GiB precisely so caches don't help).
    pub fn run(&self, model: &MemoryModel) -> Vec<StreamResult> {
        assert!(
            self.working_set_bytes() > 512 << 20,
            "working set must exceed the cache hierarchy"
        );
        Kernel::ALL
            .iter()
            .map(|&kernel| StreamResult {
                kernel,
                threads: self.threads,
                gib_per_sec: model.stream_bandwidth_gib(self.threads, kernel.mlp_scale()),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thymesisflow_core::config::SystemConfig;
    use thymesisflow_core::params::DatapathParams;

    fn model(c: SystemConfig) -> MemoryModel {
        MemoryModel::new(DatapathParams::prototype(), c)
    }

    #[test]
    fn paper_setup_geometry() {
        let b = StreamBench::paper(8);
        // 160M elements x 8 B x 3 arrays = 3.58 GiB ("3.66 GiB" in the
        // paper's GB accounting).
        let gib = b.working_set_bytes() as f64 / (1u64 << 30) as f64;
        assert!((3.5..=3.7).contains(&gib), "{gib}");
    }

    #[test]
    fn fig5_shape_single_channel() {
        let m = model(SystemConfig::SingleDisaggregated);
        let g4 = StreamBench::paper(4).run(&m)[0].gib_per_sec;
        let g8 = StreamBench::paper(8).run(&m)[0].gib_per_sec;
        let g16 = StreamBench::paper(16).run(&m)[0].gib_per_sec;
        // Rises toward the channel ceiling at 8 threads, declines at 16.
        assert!(g8 > g4 * 0.95, "g4={g4} g8={g8}");
        assert!(g16 < g8, "g8={g8} g16={g16}");
        assert!(g8 < 11.64, "below the theoretical max line");
    }

    #[test]
    fn fig5_ordering_between_configs() {
        for threads in [4, 8, 16] {
            let b = StreamBench::paper(threads);
            let s = b.run(&model(SystemConfig::SingleDisaggregated))[0].gib_per_sec;
            let bo = b.run(&model(SystemConfig::BondingDisaggregated))[0].gib_per_sec;
            let i = b.run(&model(SystemConfig::Interleaved))[0].gib_per_sec;
            assert!(bo >= s, "{threads}T bonding {bo} vs single {s}");
            assert!(i > bo, "{threads}T interleaved {i} vs bonding {bo}");
        }
    }

    #[test]
    fn kernels_differ_modestly() {
        let m = model(SystemConfig::SingleDisaggregated);
        let results = StreamBench::paper(8).run(&m);
        let copy = results[0].gib_per_sec;
        for r in &results {
            let rel = (r.gib_per_sec - copy).abs() / copy;
            assert!(rel < 0.10, "{:?} deviates {rel}", r.kernel);
        }
    }

    #[test]
    fn add_beats_scale_when_demand_limited() {
        // At 4 threads the channel is not saturated: add's second read
        // stream extracts more MLP than scale's single stream.
        let m = model(SystemConfig::SingleDisaggregated);
        let results = StreamBench::paper(4).run(&m);
        assert!(results[2].gib_per_sec >= results[1].gib_per_sec);
    }

    #[test]
    #[should_panic(expected = "exceed the cache")]
    fn tiny_working_set_rejected() {
        let b = StreamBench {
            elements: 1000,
            threads: 4,
        };
        let _ = b.run(&model(SystemConfig::Local));
    }
}
