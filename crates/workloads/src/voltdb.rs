//! A VoltDB-like partitioned in-memory database model (paper §VI-D).
//!
//! VoltDB (H-Store) is a share-nothing in-memory RDBMS: tables are split
//! into partitions, each owned by a single-threaded executor, so
//! parallelism scales with the partition count. The model captures the
//! performance structure the paper measures:
//!
//! * **per-transaction busy time** — instructions at the no-stall IPC
//!   plus memory-stall time from the lines the transaction touches,
//!   priced by the configuration's [`MemoryModel`]. Disaggregation
//!   inflates exactly this term (the paper measures back-end stalls
//!   rising from 55.5% locally to 80.9% single-disaggregated);
//! * **dispatch/synchronisation** — the per-transaction coordination
//!   cost that grows with the partition count and caps horizontal
//!   scaling (the paper sees IPC gains flatten past 16 partitions);
//! * **multi-partition transactions** — YCSB-E scans fan out to every
//!   partition and serialize on two-phase coordination, which is why E's
//!   throughput is low and nearly configuration-independent;
//! * **scale-out** — partitions split over two nodes with purely local
//!   memory, paying an Ethernet round trip on the transactions that
//!   land on the remote half;
//! * **utilized cores / package IPC** — derived the way the paper's
//!   §VI-D methodology does: UCC from the task-clock (busy executors by
//!   Little's law), package IPC = single-thread IPC × UCC.

use serde::{Deserialize, Serialize};
use thymesisflow_core::config::SystemConfig;
use thymesisflow_core::memmodel::MemoryModel;

use crate::ycsb::YcsbWorkload;

/// Cost coefficients of one operation type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpCost {
    /// Instructions retired.
    pub instructions: f64,
    /// Cache lines touched.
    pub lines: f64,
}

/// Model parameters (calibrated against the paper's §VI-D numbers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoltDbParams {
    /// Core clock, GHz.
    pub ghz: f64,
    /// No-stall IPC of the executor loop.
    pub ipc0: f64,
    /// Memory-level-parallelism overlap of the executor.
    pub overlap: f64,
    /// Last-level-cache miss ratio of touched lines (large tables, poor
    /// locality).
    pub miss_ratio: f64,
    /// Dispatch/synchronisation microseconds per transaction per
    /// partition (initiator contention grows with partitions).
    pub dispatch_us_per_partition: f64,
    /// Two-phase coordination cost of a multi-partition transaction, µs.
    pub mp_coordination_us: f64,
    /// Fraction of scale-out transactions paying an Ethernet round trip.
    pub scale_out_remote_fraction: f64,
    /// Busy-time inflation under channel bonding (response reordering).
    pub bonding_penalty: f64,
}

impl Default for VoltDbParams {
    fn default() -> Self {
        VoltDbParams {
            ghz: 3.8,
            ipc0: 2.2,
            overlap: 3.0,
            miss_ratio: 0.6,
            dispatch_us_per_partition: 6.5,
            mp_coordination_us: 85.0,
            scale_out_remote_fraction: 0.5,
            bonding_penalty: 0.03,
        }
    }
}

/// The §VI-D profiling outputs (the paper's Fig. 6 series).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Throughput in operations/second (Fig. 7).
    pub throughput_ops: f64,
    /// Average utilized CPU cores (task-clock derived).
    pub ucc: f64,
    /// Average retired instructions per cycle across the package.
    pub package_ipc: f64,
    /// Single-thread IPC of the executor.
    pub thread_ipc: f64,
    /// Back-end stall fraction of busy cycles.
    pub backend_stall_fraction: f64,
}

/// The database model for one configuration and partition count.
#[derive(Debug, Clone)]
pub struct VoltDb {
    params: VoltDbParams,
    model: MemoryModel,
    partitions: u32,
}

impl VoltDb {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn new(model: MemoryModel, partitions: u32) -> Self {
        assert!(partitions > 0, "need at least one partition");
        VoltDb {
            params: VoltDbParams::default(),
            model,
            partitions,
        }
    }

    /// Overrides the calibration.
    pub fn with_params(mut self, params: VoltDbParams) -> Self {
        self.params = params;
        self
    }

    /// Partition count.
    pub fn partitions(&self) -> u32 {
        self.partitions
    }

    /// Cost table per operation class.
    pub fn op_cost(read_like: bool, write_like: bool) -> OpCost {
        match (read_like, write_like) {
            (true, false) => OpCost {
                instructions: 60_000.0,
                lines: 428.0,
            },
            (false, true) => OpCost {
                instructions: 90_000.0,
                lines: 600.0,
            },
            // Read-modify-write: both halves.
            _ => OpCost {
                instructions: 130_000.0,
                lines: 900.0,
            },
        }
    }

    /// Average per-transaction cost of a workload's mix (scans handled
    /// separately as multi-partition transactions).
    fn mix_cost(&self, w: YcsbWorkload) -> OpCost {
        let read = Self::op_cost(true, false);
        let write = Self::op_cost(false, true);
        let rmw = Self::op_cost(true, true);
        let (fr, fw, frmw) = match w {
            YcsbWorkload::A => (0.5, 0.5, 0.0),
            YcsbWorkload::B => (0.95, 0.05, 0.0),
            YcsbWorkload::C => (1.0, 0.0, 0.0),
            YcsbWorkload::D => (0.95, 0.05, 0.0),
            // E's 5% inserts; the scans are handled by `throughput`.
            YcsbWorkload::E => (0.0, 1.0, 0.0),
            YcsbWorkload::F => (0.5, 0.0, 0.5),
        };
        OpCost {
            instructions: fr * read.instructions
                + fw * write.instructions
                + frmw * rmw.instructions,
            lines: fr * read.lines + fw * write.lines + frmw * rmw.lines,
        }
    }

    /// Memory-stall cycles for `lines` touched lines under this
    /// configuration.
    fn stall_cycles(&self, lines: f64) -> f64 {
        let p = &self.params;
        let lat = self.model.avg_load_latency_ns();
        let local = self.model.params().local_load_latency().as_ns_f64();
        let eff_overlap = p.overlap * (lat / local).max(1.0).powf(0.45);
        let mut cycles = lines * p.miss_ratio * lat * p.ghz / eff_overlap;
        if self.model.config() == SystemConfig::BondingDisaggregated {
            cycles *= 1.0 + p.bonding_penalty;
        }
        cycles
    }

    /// Busy (on-CPU) microseconds of one single-partition transaction.
    fn busy_us(&self, w: YcsbWorkload) -> f64 {
        let cost = self.mix_cost(w);
        let compute = cost.instructions / self.params.ipc0;
        let stall = self.stall_cycles(cost.lines);
        let mut us = (compute + stall) / self.params.ghz / 1000.0;
        if self.model.config().is_scale_out() {
            // Half the single-partition transactions land on the other
            // node: one Ethernet round trip each.
            us += self.params.scale_out_remote_fraction
                * self.model.params().ethernet_rtt_us;
        }
        us
    }

    /// Per-transaction dispatch/synchronisation microseconds.
    fn dispatch_us(&self) -> f64 {
        self.params.dispatch_us_per_partition * self.partitions as f64
    }

    /// Throughput of a workload, ops/second (Fig. 7).
    pub fn throughput_ops(&self, w: YcsbWorkload) -> f64 {
        if w == YcsbWorkload::E {
            return self.scan_throughput();
        }
        let busy = self.busy_us(w);
        self.partitions as f64 / (busy + self.dispatch_us()) * 1e6
    }

    /// Multi-partition scan throughput: the scan's execution splits over
    /// the partitions while two-phase coordination serializes.
    fn scan_throughput(&self) -> f64 {
        let scan_records = 48.0;
        let instructions = 40_000.0 + 2_500.0 * scan_records;
        let lines = 30.0 * scan_records;
        let compute_us = instructions / self.params.ipc0 / self.params.ghz / 1000.0;
        let mem_us = self.stall_cycles(lines) / self.params.ghz / 1000.0;
        let parallel = (compute_us + mem_us) / self.partitions as f64;
        let mut latency = self.params.mp_coordination_us + parallel;
        if self.model.config().is_scale_out() {
            // Cross-node merge shares the coordination window; only half
            // an Ethernet round trip lands on the critical path.
            latency += 0.5 * self.model.params().ethernet_rtt_us;
        }
        1e6 / latency
    }

    /// The full §VI-D profile.
    pub fn profile(&self, w: YcsbWorkload) -> Profile {
        let throughput = self.throughput_ops(w);
        let (busy_us, instructions) = if w == YcsbWorkload::E {
            let scan_records = 48.0;
            let instr = 40_000.0 + 2_500.0 * scan_records;
            let lines = 30.0 * scan_records;
            let cycles = instr / self.params.ipc0 + self.stall_cycles(lines);
            (cycles / self.params.ghz / 1000.0, instr)
        } else {
            (self.busy_us(w), self.mix_cost(w).instructions)
        };
        // Little's law on the task clock: busy executors.
        let ucc = (throughput * busy_us / 1e6).min(self.partitions as f64);
        let busy_cycles = busy_us * 1000.0 * self.params.ghz;
        let thread_ipc = instructions / busy_cycles;
        let compute = instructions / self.params.ipc0;
        let stall = busy_cycles - compute;
        Profile {
            throughput_ops: throughput,
            ucc,
            package_ipc: thread_ipc * ucc,
            thread_ipc,
            backend_stall_fraction: (stall / busy_cycles).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thymesisflow_core::params::DatapathParams;

    fn db(c: SystemConfig, partitions: u32) -> VoltDb {
        VoltDb::new(
            MemoryModel::new(DatapathParams::prototype(), c),
            partitions,
        )
    }

    #[test]
    fn stall_fractions_match_fig6_analysis() {
        let local = db(SystemConfig::Local, 32).profile(YcsbWorkload::A);
        let remote = db(SystemConfig::SingleDisaggregated, 32).profile(YcsbWorkload::A);
        // Paper: 55.5% of cycles back-end stalled locally, 80.9%
        // single-disaggregated.
        assert!(
            (0.45..=0.66).contains(&local.backend_stall_fraction),
            "local stalls {}",
            local.backend_stall_fraction
        );
        assert!(
            (0.72..=0.90).contains(&remote.backend_stall_fraction),
            "remote stalls {}",
            remote.backend_stall_fraction
        );
    }

    #[test]
    fn fig7_workload_a_orderings_at_32_partitions() {
        let t = |c| db(c, 32).throughput_ops(YcsbWorkload::A);
        let local = t(SystemConfig::Local);
        let scale = t(SystemConfig::ScaleOut);
        let inter = t(SystemConfig::Interleaved);
        let single = t(SystemConfig::SingleDisaggregated);
        let bond = t(SystemConfig::BondingDisaggregated);
        // Paper: local best; others slower by 5.95% (scale-out), 5.62%
        // (interleaved), 7.97% (single), 10.03% (bonding).
        assert!(local > scale && local > inter && local > single && local > bond);
        assert!(bond < single, "bonding ({bond}) slower than single ({single})");
        for (name, v, paper_pct) in [
            ("scale-out", scale, 5.95),
            ("interleaved", inter, 5.62),
            ("single", single, 7.97),
            ("bonding", bond, 10.03),
        ] {
            let pct = (1.0 - v / local) * 100.0;
            assert!(
                (paper_pct - 5.0..=paper_pct + 5.0).contains(&pct),
                "{name}: modelled {pct:.1}% vs paper {paper_pct}%"
            );
        }
    }

    #[test]
    fn fig7_low_partitions_penalize_thymesisflow() {
        // "When running with 4 VoltDB data partitions all configurations
        // using ThymesisFlow have significantly lower throughput."
        let local = db(SystemConfig::Local, 4).throughput_ops(YcsbWorkload::A);
        let single =
            db(SystemConfig::SingleDisaggregated, 4).throughput_ops(YcsbWorkload::A);
        let gap = 1.0 - single / local;
        assert!(gap > 0.20, "gap {gap}");
    }

    #[test]
    fn fig7_workload_e_is_config_insensitive() {
        let t = |c| db(c, 32).throughput_ops(YcsbWorkload::E);
        let local = t(SystemConfig::Local);
        for c in SystemConfig::ALL {
            let v = t(c);
            let rel = (local - v) / local;
            assert!(rel < 0.20, "{c}: {v} vs local {local}");
        }
        // And E is an order of magnitude below A (Fig. 7's axes: ~140k
        // vs ~11k).
        let a = db(SystemConfig::Local, 32).throughput_ops(YcsbWorkload::A);
        assert!(a / local > 8.0, "A {a} vs E {local}");
    }

    #[test]
    fn fig6_ucc_higher_under_disaggregation() {
        for parts in [4, 16, 32, 64] {
            for w in [YcsbWorkload::A, YcsbWorkload::C] {
                let l = db(SystemConfig::Local, parts).profile(w);
                let r = db(SystemConfig::SingleDisaggregated, parts).profile(w);
                assert!(
                    r.ucc > l.ucc,
                    "{w:?}@{parts}: remote UCC {} <= local {}",
                    r.ucc,
                    l.ucc
                );
            }
        }
    }

    #[test]
    fn fig6_ipc_lower_under_disaggregation_and_rising_with_partitions() {
        for w in [YcsbWorkload::A, YcsbWorkload::F] {
            let mut last_local = 0.0;
            let mut last_remote = 0.0;
            for parts in [4, 16, 32, 64] {
                let l = db(SystemConfig::Local, parts).profile(w);
                let r = db(SystemConfig::SingleDisaggregated, parts).profile(w);
                assert!(
                    r.thread_ipc < l.thread_ipc,
                    "{w:?}@{parts}: thread IPC"
                );
                assert!(l.package_ipc >= last_local, "{w:?}@{parts} local IPC");
                assert!(r.package_ipc >= last_remote, "{w:?}@{parts} remote IPC");
                last_local = l.package_ipc;
                last_remote = r.package_ipc;
            }
        }
    }

    #[test]
    fn fig6_biggest_gain_from_4_to_16() {
        // "The biggest improvement is observed when we increase the
        // number of data partitions from 4 to 16. For higher partition
        // numbers, the IPC gains remain relatively small."
        let ipc = |parts| db(SystemConfig::Local, parts).profile(YcsbWorkload::A).package_ipc;
        let g1 = ipc(16) - ipc(4);
        let g2 = ipc(64) - ipc(16);
        assert!(g1 > g2 * 1.5, "4->16 gain {g1} vs 16->64 gain {g2}");
    }

    #[test]
    fn ucc_capped_by_partitions() {
        let p = db(SystemConfig::SingleDisaggregated, 4).profile(YcsbWorkload::A);
        assert!(p.ucc <= 4.0);
    }
}
