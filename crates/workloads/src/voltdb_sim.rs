//! Simulation-driven VoltDB execution: drives the analytic cost model
//! of [`crate::voltdb`] with *actual* YCSB operations from the
//! generator, executed on simulated partition threads with
//! perf-counter accounting ([`hostsim::perf::PerfCounters`]) — the same
//! counters the paper reads with `perf`.
//!
//! This path cross-validates the closed-form model: both must agree on
//! throughput, IPC, UCC and stall fractions, and the simulation
//! additionally yields per-transaction latency distributions.

use hostsim::perf::PerfCounters;
use simkit::event::EventQueue;
use simkit::stats::Histogram;
use simkit::time::SimTime;
use thymesisflow_core::memmodel::MemoryModel;

use crate::voltdb::{VoltDb, VoltDbParams};
use crate::ycsb::{Op, YcsbGenerator, YcsbWorkload};

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Transactions committed.
    pub committed: u64,
    /// Achieved throughput, ops/second.
    pub throughput_ops: f64,
    /// Per-transaction latency (dispatch + execution), nanoseconds.
    pub latency_ns: Histogram,
    /// Aggregated perf counters across all partition executors.
    pub perf: PerfCounters,
}

#[derive(Debug)]
enum Ev {
    /// The dispatcher hands a transaction to a partition.
    Dispatch { partition: usize },
    /// A partition finishes executing a transaction.
    Done { partition: usize, issued: SimTime },
}

/// The simulated database server.
#[derive(Debug)]
pub struct VoltDbSim {
    model: MemoryModel,
    params: VoltDbParams,
    partitions: usize,
}

impl VoltDbSim {
    /// Builds the simulator for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn new(model: MemoryModel, partitions: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        VoltDbSim {
            model,
            params: VoltDbParams::default(),
            partitions,
        }
    }

    /// Busy nanoseconds and (instructions, compute cycles, stall
    /// cycles) for one operation, priced like the analytic model.
    fn op_cost(&self, op: &Op) -> (u64, u64, u64) {
        let cost = match op {
            Op::Read(_) => VoltDb::op_cost(true, false),
            Op::Update(_) | Op::Insert(_) => VoltDb::op_cost(false, true),
            Op::ReadModifyWrite(_) => VoltDb::op_cost(true, true),
            Op::Scan(_, n) => crate::voltdb::OpCost {
                instructions: 40_000.0 + 2_500.0 * *n as f64,
                lines: 30.0 * *n as f64,
            },
        };
        let p = &self.params;
        let compute = cost.instructions / p.ipc0;
        let lat = self.model.avg_load_latency_ns();
        let local = self.model.params().local_load_latency().as_ns_f64();
        let eff_overlap = p.overlap * (lat / local).max(1.0).powf(0.45);
        let stall = cost.lines * p.miss_ratio * lat * p.ghz / eff_overlap;
        (
            cost.instructions as u64,
            compute as u64,
            stall as u64,
        )
    }

    /// Runs `transactions` operations of a workload; the dispatcher
    /// serializes at the analytic model's per-partition rate.
    pub fn run(&self, workload: YcsbWorkload, transactions: u64, seed: u64) -> SimReport {
        let mut gen = YcsbGenerator::new(workload, 1_000_000, seed);
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let mut partition_free = vec![SimTime::ZERO; self.partitions];
        let mut perf = PerfCounters::new();
        let mut latency = Histogram::new();
        let mut committed = 0u64;
        // Per-transaction coordination/synchronisation: grows with the
        // partition count (the analytic model's dispatch term). The
        // executor *waits* through it (off-CPU), so it occupies the
        // partition without counting toward the task clock.
        let coordination = SimTime::from_ns_f64(
            self.params.dispatch_us_per_partition * self.partitions as f64 * 1000.0,
        );
        // Closed loop: one outstanding transaction per partition.
        for partition in 0..self.partitions {
            queue.schedule(SimTime::ZERO, Ev::Dispatch { partition });
        }
        let mut dispatched = 0u64;
        while let Some((now, ev)) = queue.pop() {
            match ev {
                Ev::Dispatch { partition } => {
                    if dispatched >= transactions {
                        continue;
                    }
                    dispatched += 1;
                    let op = gen.next_op();
                    let (instr, compute, stall) = self.op_cost(&op);
                    perf.record_burst(instr, compute, stall, self.params.ghz);
                    let busy =
                        SimTime::from_ns_f64((compute + stall) as f64 / self.params.ghz);
                    let start = partition_free[partition].max(now);
                    let done = start + coordination + busy;
                    partition_free[partition] = done;
                    queue.schedule(done, Ev::Done {
                        partition,
                        issued: now,
                    });
                }
                Ev::Done { partition, issued } => {
                    committed += 1;
                    latency.record((queue.now() - issued).as_ns());
                    queue.schedule(queue.now(), Ev::Dispatch { partition });
                }
            }
        }
        let elapsed = queue.now();
        perf.advance_wall(elapsed.as_ns());
        SimReport {
            committed,
            throughput_ops: committed as f64 / elapsed.as_secs_f64(),
            latency_ns: latency,
            perf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thymesisflow_core::config::SystemConfig;
    use thymesisflow_core::params::DatapathParams;

    fn model(c: SystemConfig) -> MemoryModel {
        MemoryModel::new(DatapathParams::prototype(), c)
    }

    #[test]
    fn simulation_commits_every_transaction() {
        let sim = VoltDbSim::new(model(SystemConfig::Local), 8);
        let r = sim.run(YcsbWorkload::A, 2_000, 1);
        assert_eq!(r.committed, 2_000);
        assert!(r.throughput_ops > 0.0);
        assert_eq!(r.latency_ns.count(), 2_000);
    }

    #[test]
    fn simulation_agrees_with_the_analytic_model() {
        // Throughput from the event simulation should land within ~25%
        // of the closed-form prediction for non-scan workloads.
        for config in [SystemConfig::Local, SystemConfig::SingleDisaggregated] {
            for parts in [4u32, 32] {
                let analytic =
                    VoltDb::new(model(config), parts).throughput_ops(YcsbWorkload::A);
                let sim = VoltDbSim::new(model(config), parts as usize)
                    .run(YcsbWorkload::A, 4_000, 2)
                    .throughput_ops;
                let rel = (sim - analytic).abs() / analytic;
                assert!(
                    rel < 0.25,
                    "{config}@{parts}: sim {sim:.0} vs analytic {analytic:.0} ({rel:.2})"
                );
            }
        }
    }

    #[test]
    fn perf_counters_reproduce_the_stall_analysis() {
        let local = VoltDbSim::new(model(SystemConfig::Local), 32)
            .run(YcsbWorkload::A, 3_000, 3)
            .perf;
        let remote = VoltDbSim::new(model(SystemConfig::SingleDisaggregated), 32)
            .run(YcsbWorkload::A, 3_000, 3)
            .perf;
        // Paper: 55.5% local vs 80.9% single-disaggregated.
        assert!(
            (0.45..=0.66).contains(&local.backend_stall_fraction()),
            "local {}",
            local.backend_stall_fraction()
        );
        assert!(
            (0.72..=0.90).contains(&remote.backend_stall_fraction()),
            "remote {}",
            remote.backend_stall_fraction()
        );
        assert!(remote.thread_ipc() < local.thread_ipc());
        // UCC from the task clock: disaggregation keeps cores busier.
        assert!(remote.ucc() > local.ucc());
    }

    #[test]
    fn disaggregation_fattens_transaction_latency() {
        let local = VoltDbSim::new(model(SystemConfig::Local), 16).run(YcsbWorkload::A, 3_000, 4);
        let remote = VoltDbSim::new(model(SystemConfig::SingleDisaggregated), 16)
            .run(YcsbWorkload::A, 3_000, 4);
        assert!(remote.latency_ns.mean() > local.latency_ns.mean());
        assert!(remote.latency_ns.quantile(0.9) > local.latency_ns.quantile(0.9));
    }
}
