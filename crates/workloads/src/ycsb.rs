//! The Yahoo! Cloud Serving Benchmark workload generator.
//!
//! Implements the six core workloads (A–F) per the YCSB core-workload
//! definitions the paper drives VoltDB with:
//!
//! | workload | mix | request distribution |
//! |---|---|---|
//! | A (update heavy) | 50% read / 50% update | zipfian |
//! | B (read mostly)  | 95% read / 5% update | zipfian |
//! | C (read only)    | 100% read | zipfian |
//! | D (read latest)  | 95% read / 5% insert | latest |
//! | E (short ranges) | 95% scan / 5% insert | zipfian |
//! | F (read-modify-write) | 50% read / 50% RMW | zipfian |

use serde::{Deserialize, Serialize};
use simkit::rng::{DetRng, ZipfSampler};

/// The six core workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum YcsbWorkload {
    /// Update heavy: 50/50 read/update.
    A,
    /// Read mostly: 95/5 read/update.
    B,
    /// Read only.
    C,
    /// Read latest: 95/5 read/insert, latest distribution.
    D,
    /// Short ranges: 95/5 scan/insert.
    E,
    /// Read-modify-write: 50/50 read/RMW.
    F,
}

impl YcsbWorkload {
    /// All six, in order.
    pub const ALL: [YcsbWorkload; 6] = [
        YcsbWorkload::A,
        YcsbWorkload::B,
        YcsbWorkload::C,
        YcsbWorkload::D,
        YcsbWorkload::E,
        YcsbWorkload::F,
    ];

    /// Whether >95% of operations are reads or scans ("read intensive"
    /// in the paper's grouping: B, C, D, E; A and F are "mixed").
    pub fn is_read_intensive(self) -> bool {
        matches!(
            self,
            YcsbWorkload::B | YcsbWorkload::C | YcsbWorkload::D | YcsbWorkload::E
        )
    }

    /// The figure label.
    pub fn label(self) -> &'static str {
        match self {
            YcsbWorkload::A => "A",
            YcsbWorkload::B => "B",
            YcsbWorkload::C => "C",
            YcsbWorkload::D => "D",
            YcsbWorkload::E => "E",
            YcsbWorkload::F => "F",
        }
    }
}

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Point read of a key.
    Read(u64),
    /// Field update of a key.
    Update(u64),
    /// Insert of a new key.
    Insert(u64),
    /// Range scan of `len` records starting at a key.
    Scan(u64, u32),
    /// Read-modify-write of a key.
    ReadModifyWrite(u64),
}

impl Op {
    /// The primary key touched.
    pub fn key(self) -> u64 {
        match self {
            Op::Read(k)
            | Op::Update(k)
            | Op::Insert(k)
            | Op::Scan(k, _)
            | Op::ReadModifyWrite(k) => k,
        }
    }

    /// Whether the operation mutates state.
    pub fn is_write(self) -> bool {
        !matches!(self, Op::Read(_) | Op::Scan(_, _))
    }

    /// Records touched.
    pub fn records(self) -> u32 {
        match self {
            Op::Scan(_, n) => n,
            Op::ReadModifyWrite(_) => 2,
            _ => 1,
        }
    }
}

/// The operation generator.
#[derive(Debug)]
pub struct YcsbGenerator {
    workload: YcsbWorkload,
    zipf: ZipfSampler,
    record_count: u64,
    inserted: u64,
    rng: DetRng,
    max_scan_len: u32,
}

impl YcsbGenerator {
    /// YCSB's default zipfian constant.
    pub const ZIPF_THETA: f64 = 0.99;

    /// Creates a generator over `record_count` pre-loaded records.
    ///
    /// # Panics
    ///
    /// Panics if `record_count` is zero.
    pub fn new(workload: YcsbWorkload, record_count: u64, seed: u64) -> Self {
        assert!(record_count > 0, "need a loaded table");
        YcsbGenerator {
            workload,
            zipf: ZipfSampler::new(record_count, Self::ZIPF_THETA),
            record_count,
            inserted: 0,
            rng: DetRng::new(seed),
            max_scan_len: 100,
        }
    }

    /// The workload being generated.
    pub fn workload(&self) -> YcsbWorkload {
        self.workload
    }

    fn pick_key(&mut self) -> u64 {
        match self.workload {
            // "Latest": skew toward recently inserted records.
            YcsbWorkload::D => {
                let offset = self.zipf.sample(&mut self.rng);
                (self.record_count + self.inserted - 1).saturating_sub(offset)
            }
            _ => self.zipf.sample(&mut self.rng),
        }
    }

    fn insert_key(&mut self) -> u64 {
        let k = self.record_count + self.inserted;
        self.inserted += 1;
        k
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> Op {
        let x = self.rng.f64();
        match self.workload {
            YcsbWorkload::A => {
                let k = self.pick_key();
                if x < 0.5 {
                    Op::Read(k)
                } else {
                    Op::Update(k)
                }
            }
            YcsbWorkload::B => {
                let k = self.pick_key();
                if x < 0.95 {
                    Op::Read(k)
                } else {
                    Op::Update(k)
                }
            }
            YcsbWorkload::C => Op::Read(self.pick_key()),
            YcsbWorkload::D => {
                if x < 0.95 {
                    Op::Read(self.pick_key())
                } else {
                    Op::Insert(self.insert_key())
                }
            }
            YcsbWorkload::E => {
                if x < 0.95 {
                    let len = 1 + self.rng.range(0, self.max_scan_len as u64) as u32;
                    Op::Scan(self.pick_key(), len)
                } else {
                    Op::Insert(self.insert_key())
                }
            }
            YcsbWorkload::F => {
                let k = self.pick_key();
                if x < 0.5 {
                    Op::Read(k)
                } else {
                    Op::ReadModifyWrite(k)
                }
            }
        }
    }

    /// Average records touched per operation for this workload
    /// (analytic; scans average `(1 + max)/2`).
    pub fn mean_records_per_op(&self) -> f64 {
        match self.workload {
            YcsbWorkload::E => 0.95 * (1.0 + self.max_scan_len as f64) / 2.0 + 0.05,
            YcsbWorkload::F => 0.5 + 0.5 * 2.0,
            _ => 1.0,
        }
    }

    /// Fraction of operations that write.
    pub fn write_fraction(&self) -> f64 {
        match self.workload {
            YcsbWorkload::A | YcsbWorkload::F => 0.5,
            YcsbWorkload::B => 0.05,
            YcsbWorkload::C => 0.0,
            YcsbWorkload::D | YcsbWorkload::E => 0.05,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(w: YcsbWorkload, n: usize) -> (f64, f64, f64) {
        let mut g = YcsbGenerator::new(w, 100_000, 7);
        let (mut reads, mut writes, mut scans) = (0, 0, 0);
        for _ in 0..n {
            match g.next_op() {
                Op::Read(_) => reads += 1,
                Op::Scan(_, _) => scans += 1,
                _ => writes += 1,
            }
        }
        (
            reads as f64 / n as f64,
            writes as f64 / n as f64,
            scans as f64 / n as f64,
        )
    }

    #[test]
    fn workload_mixes_match_spec() {
        let n = 50_000;
        let (r, w, _) = mix(YcsbWorkload::A, n);
        assert!((r - 0.5).abs() < 0.02 && (w - 0.5).abs() < 0.02);
        let (r, w, _) = mix(YcsbWorkload::B, n);
        assert!((r - 0.95).abs() < 0.01 && (w - 0.05).abs() < 0.01);
        let (r, _, _) = mix(YcsbWorkload::C, n);
        assert!((r - 1.0).abs() < 1e-9);
        let (_, w, s) = mix(YcsbWorkload::E, n);
        assert!((s - 0.95).abs() < 0.01 && (w - 0.05).abs() < 0.01);
    }

    #[test]
    fn zipf_hits_hot_keys() {
        let mut g = YcsbGenerator::new(YcsbWorkload::C, 1_000_000, 3);
        let hot = (0..20_000)
            .filter(|_| g.next_op().key() < 10_000)
            .count() as f64
            / 20_000.0;
        // Top 1% of a zipf(0.99) key space draws roughly half the mass.
        assert!(hot > 0.35, "hot fraction {hot}");
    }

    #[test]
    fn latest_distribution_prefers_new_keys() {
        let mut g = YcsbGenerator::new(YcsbWorkload::D, 100_000, 5);
        let mut late_hits = 0;
        let mut reads = 0;
        for _ in 0..20_000 {
            if let Op::Read(k) = g.next_op() {
                reads += 1;
                if k >= 90_000 {
                    late_hits += 1;
                }
            }
        }
        let frac = late_hits as f64 / reads as f64;
        assert!(frac > 0.5, "latest fraction {frac}");
    }

    #[test]
    fn inserts_extend_the_keyspace() {
        let mut g = YcsbGenerator::new(YcsbWorkload::D, 1_000, 6);
        let mut max_insert = 0;
        for _ in 0..10_000 {
            if let Op::Insert(k) = g.next_op() {
                assert!(k >= 1_000);
                max_insert = max_insert.max(k);
            }
        }
        assert!(max_insert > 1_000);
    }

    #[test]
    fn scan_lengths_bounded() {
        let mut g = YcsbGenerator::new(YcsbWorkload::E, 10_000, 8);
        for _ in 0..5_000 {
            if let Op::Scan(_, len) = g.next_op() {
                assert!((1..=100).contains(&len));
            }
        }
        assert!(g.mean_records_per_op() > 40.0);
    }

    #[test]
    fn read_intensive_grouping() {
        assert!(!YcsbWorkload::A.is_read_intensive());
        assert!(YcsbWorkload::B.is_read_intensive());
        assert!(YcsbWorkload::E.is_read_intensive());
        assert!(!YcsbWorkload::F.is_read_intensive());
    }
}
