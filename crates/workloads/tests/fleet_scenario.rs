//! Fleet-scale SLO scenario gates (ISSUE 10 tentpole).
//!
//! Three properties hold the harness together:
//!
//! 1. the undisturbed control arm finishes with **zero** breaches —
//!    calibrated budgets are not trigger-happy;
//! 2. the chaos arm breaches **by design**: the crashed donor's leases
//!    lose availability and/or the cut hot route blows its calibrated
//!    latency budget;
//! 3. the whole report is **bit-identical** between 1 and 4 partition
//!    workers — fleet parallelism must not leak into the physics.

use workloads::fleet::{FleetReport, FleetScenario};

const KNOWN_KINDS: [&str; 3] = ["p99", "p999", "availability"];

fn run(scenario: &FleetScenario, workers: usize) -> FleetReport {
    scenario
        .run(workers)
        .unwrap_or_else(|e| panic!("{} runs: {e:?}", scenario.name))
}

#[test]
fn control_run_finishes_with_zero_breaches() {
    let report = run(&FleetScenario::control(42), 1);
    assert!(
        report.breaches.is_empty(),
        "undisturbed control arm must not breach: {:?}",
        report.breaches
    );
    assert!(report.phases.iter().all(|p| p.breaches == 0));
    assert!(report.phases.iter().all(|p| p.chaos.is_empty()));
    // Traffic genuinely flowed everywhere.
    assert!(report.phases.iter().all(|p| p.completed > 0));
    assert!(report.leases.iter().all(|l| l.completed > 0));
    assert!(
        report.leases.iter().all(|l| l.availability == 1.0),
        "no chaos, no faults"
    );
}

#[test]
fn chaos_ladder_breaches_the_calibrated_contracts() {
    let scenario = FleetScenario::quick(42);
    assert!(scenario.clients >= 1_000, "fleet floor is 1000 clients");
    let report = run(&scenario, 1);

    // The ladder ran all three phases over the full torus.
    assert_eq!(report.topology, "4x4-torus");
    assert_eq!(report.phases.len(), 3);
    let peak = &report.phases[1];
    assert_eq!(peak.name, "peak");
    assert_eq!(peak.chaos.len(), 3, "all three rungs landed: {:?}", peak.chaos);
    assert!(peak.chaos.iter().any(|c| c.starts_with("link_down:")));
    assert!(peak.chaos.iter().any(|c| c.starts_with("lane_fail:")));
    assert!(peak.chaos.iter().any(|c| c.starts_with("donor_crash:n23")));

    // The calibrated expected breach: chaos phases breach, steady does not.
    assert!(
        report.breaches_in("steady").is_empty(),
        "pre-chaos phase must hold its contracts"
    );
    assert!(
        !report.breaches.is_empty(),
        "the chaos ladder must produce at least one breach"
    );
    // The donor crash costs its leases availability.
    assert!(
        report
            .breaches
            .iter()
            .any(|b| b.kind == "availability"),
        "crashed donor must show up as an availability breach: {:?}",
        report.breaches
    );
    // Every breach speaks the closed schema vocabulary and carries
    // a phase from the ladder.
    for b in &report.breaches {
        assert!(KNOWN_KINDS.contains(&b.kind.as_str()), "unknown kind {:?}", b.kind);
        assert!(report.phases.iter().any(|p| p.name == b.phase));
        assert!(!b.detail.is_empty());
    }
    // Ledger and per-phase roll-up agree.
    let total: u64 = report.phases.iter().map(|p| p.breaches).sum();
    assert_eq!(total, report.breaches.len() as u64);

    // Congestion observability saw the traffic.
    let hottest = report.hottest.as_ref().expect("traffic flowed");
    assert!(hottest.frames > 0);
    assert!(hottest.utilization > 0.0);

    // The hot lease's recorder windows saw retirements.
    assert!(!report.hot_lease_retired_per_window.is_empty());
    assert!(report.hot_lease_retired_per_window.iter().any(|&d| d > 0));
}

#[test]
fn fleet_report_is_bit_identical_across_worker_counts() {
    let scenario = FleetScenario::quick(1234);
    let solo = run(&scenario, 1).to_json();
    let four = run(&scenario, 4).to_json();
    assert_eq!(solo, four, "worker count must not leak into the report");
}

#[test]
fn fleet_report_schema_has_the_gated_fields() {
    let report = run(&FleetScenario::quick(7), 2);
    let value = report.to_value();
    assert!(
        matches!(value.get("schema"), Some(serde::Value::UInt(1))),
        "schema field must pin version 1"
    );
    assert_eq!(
        value.get("scenario").and_then(|v| v.as_str()),
        Some("fleet-slo-quick")
    );
    for key in ["leases", "phases", "breaches"] {
        assert!(
            value.get(key).and_then(|v| v.as_seq()).is_some(),
            "report.{key} must be a sequence"
        );
    }
    let leases = value.get("leases").and_then(|v| v.as_seq()).unwrap();
    assert_eq!(leases.len(), 8, "eight base leases");
    for lease in leases {
        for key in [
            "lease",
            "class",
            "borrower",
            "donor",
            "clients",
            "p99_ns",
            "p999_ns",
            "availability",
            "completed",
            "faulted",
        ] {
            assert!(lease.get(key).is_some(), "lease row misses {key}");
        }
    }
    assert!(value.get("hottest_link").is_some());
    assert!(value.get("churn").is_some());
    // JSON round-trips through the vendored serializer.
    let json = report.to_json();
    assert!(json.ends_with('\n'));
    assert!(json.contains("\"schema\":1"));
}
