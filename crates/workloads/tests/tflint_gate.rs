//! Static-analysis gate: `cargo test` fails on any tflint rule
//! violation or stale/reasonless `tflint::allow` in this crate.

tflint::gate!();
