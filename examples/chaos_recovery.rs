//! Chaos recovery: scripted failures against a live fabric and a live
//! rack, proving the exactly-once-or-typed-fault contract end to end.
//!
//! Three acts:
//!
//! 1. **Link flap** shorter than the watchdog's detection window — the
//!    replay protocol absorbs the outage; every load completes.
//! 2. **Hard link-down** — the watchdog declares the link dead, strands
//!    every in-flight load as a *typed* fault (never silence), and the
//!    poisoned path refuses new loads.
//! 3. **Donor crash at rack scale** — the control plane evacuates the
//!    dead donor's lease onto a surviving host; the borrower keeps its
//!    remote memory and in-flight loads surface as typed faults.
//!
//! ```text
//! cargo run --example chaos_recovery
//! ```

use thymesisflow::core::attach::AttachRequest;
use thymesisflow::core::fabric::{
    ChaosPlan, FabricBuilder, FabricError, PathSpec, RecoveryConfig,
};
use thymesisflow::core::params::DatapathParams;
use thymesisflow::routing::topology::{Line, NodeId};
use thymesisflow::core::rack::{LeaseResolution, NodeConfig, RackBuilder};
use thymesisflow::simkit::time::SimTime;
use thymesisflow::simkit::units::GIB;

const LOADS: usize = 16;

fn main() {
    // ---- act 1: a flap the replay protocol rides out -----------------
    println!("== link flap shorter than the detection window ==");
    let window = RecoveryConfig::default().detection_window();
    let line = Line::new(2).expect("2-node line");
    let (mut fabric, paths) =
        FabricBuilder::from_topology(DatapathParams::prototype(), &line, NodeId(0))
            .path_to(NodeId(1), PathSpec::reference(256 << 20, 1).labelled("flapped"))
            .build()
            .expect("reference topology assembles");
    let path = paths[0];
    fabric.set_telemetry(true);
    // Chaos targets the topology link by name — "h0-h1" is the line's
    // only cable.
    fabric.schedule_chaos(&ChaosPlan::new().link_flap_named(
        SimTime::from_ns(500),
        "h0-h1",
        SimTime::from_us(10),
    ));
    let issued: Vec<u64> = (0..LOADS)
        .map(|_| fabric.issue_read(path).expect("healthy path issues"))
        .collect();
    let mut completed = 0usize;
    while let Some(done) = fabric.step().expect("flap is survivable") {
        completed += done.len();
    }
    assert_eq!(completed, issued.len(), "a flap must not strand loads");
    assert!(fabric.faults().is_empty());
    let stats = fabric.path_link_stats(path).expect("live path")[0];
    println!(
        "  10 us outage inside a {} window: {}/{} loads completed, {} replays, 0 faults\n",
        window,
        completed,
        issued.len(),
        stats.up_replays + stats.down_replays,
    );

    // ---- act 2: a hard cut the watchdog must declare -----------------
    println!("== hard link-down: typed faults, never silence ==");
    let (mut fabric, paths) =
        FabricBuilder::from_topology(DatapathParams::prototype(), &line, NodeId(0))
            .path_to(NodeId(1), PathSpec::reference(256 << 20, 1).labelled("cut"))
            .build()
            .expect("reference topology assembles");
    let path = paths[0];
    fabric.set_telemetry(true);
    fabric.schedule_chaos(&ChaosPlan::new().link_down_named(SimTime::from_ns(500), "h0-h1"));
    let issued: Vec<u64> = (0..LOADS)
        .map(|_| fabric.issue_read(path).expect("healthy path issues"))
        .collect();
    let mut completed = Vec::new();
    while let Some(done) = fabric.step().expect("the cut resolves, not errors") {
        completed.extend(done.iter().map(|c| c.tag));
    }
    let faults = fabric.faults().to_vec();
    for &tag in &issued {
        let c = completed.iter().filter(|&&t| t == tag).count();
        let f = faults.iter().filter(|l| l.tag == tag).count();
        assert_eq!(c + f, 1, "tag {tag}: every load resolves exactly once");
    }
    assert!(!faults.is_empty(), "a permanent cut must strand loads");
    for f in &faults {
        assert!(f.at >= window, "declared dead before the detection window");
    }
    assert!(
        matches!(fabric.issue_read(path), Err(FabricError::PathFaulted { .. })),
        "the poisoned path must refuse new loads"
    );
    let snap = fabric.telemetry_snapshot();
    println!(
        "  {} completed, {} typed faults (first: {}), detected in {} ns",
        completed.len(),
        faults.len(),
        faults[0].kind,
        snap.timer("fabric.recovery.detect_ns")
            .map_or(0, |h| h.max()),
    );
    println!("  reissue on the dead path: typed PathFaulted rejection\n");

    // ---- act 3: donor crash and lease evacuation at rack scale -------
    println!("== donor crash: lease evacuation onto a survivor ==");
    let mut rack = RackBuilder::new()
        .node(NodeConfig::ac922("borrower"))
        .node(NodeConfig::ac922("donor-1"))
        .node(NodeConfig::ac922("donor-2"))
        .cable("borrower", "donor-1")
        .cable("borrower", "donor-2")
        .build()
        .expect("rack builds");
    let lease = rack
        .attach(AttachRequest::new("borrower", "donor-1", 8 * GIB))
        .expect("attach succeeds");
    let path = rack.lease_path(lease.id()).expect("lease has a path");
    let fabric = rack.fabric_mut("borrower").expect("lease built a fabric");
    let inflight: Vec<u64> = (0..8)
        .map(|_| fabric.issue_read(path).expect("healthy lease issues"))
        .collect();
    let faults = rack.crash_donor("donor-1").expect("evacuation runs");
    assert_eq!(faults.len(), 1);
    let f = &faults[0];
    assert_eq!(f.loads_faulted, inflight.len());
    let LeaseResolution::Migrated { lease: new, donor } = &f.resolution else {
        panic!("donor-2 has capacity: {:?}", f.resolution);
    };
    println!(
        "  {} died serving {}: {} in-flight loads faulted (typed), window re-homed on {donor}",
        f.donor, f.lease, f.loads_faulted,
    );
    let rtt = rack.measure_lease_rtt(*new).expect("migrated lease serves");
    assert_eq!(
        rack.host("borrower").expect("host").remote_bytes(),
        8 * GIB,
        "the borrower never lost its remote capacity"
    );
    println!(
        "  replacement {} serves at {} RTT; borrower still holds 8 GiB remote",
        new, rtt,
    );
    assert!(
        rack.attach(AttachRequest::new("borrower", "donor-1", GIB)).is_err(),
        "a dead host must refuse new business"
    );
    println!("  dead host refuses new attachments until re-provisioned\n");

    println!("chaos: every load resolved exactly once or faulted with a type — never silence");
}
