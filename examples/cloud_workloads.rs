//! The paper's §VI in one binary: run all four application classes
//! across the five system configurations and print a compact report.
//!
//! ```text
//! cargo run --release --example cloud_workloads
//! ```

use thymesisflow::core::config::SystemConfig;
use thymesisflow::workloads::memcached::MemcachedBench;
use thymesisflow::workloads::runner::WorkloadRunner;
use thymesisflow::workloads::search::{Challenge, Elasticsearch};
use thymesisflow::workloads::stream::StreamBench;
use thymesisflow::workloads::voltdb::VoltDb;
use thymesisflow::workloads::ycsb::YcsbWorkload;

fn main() {
    let runner = WorkloadRunner::new();

    println!("== STREAM copy @8 threads (GiB/s) ==");
    for config in SystemConfig::THYMESISFLOW {
        let gib = StreamBench::paper(8).run(&runner.model(config))[0].gib_per_sec;
        println!("  {config:<24} {gib:>8.2}");
    }

    println!("\n== VoltDB + YCSB-A @32 partitions (ops/s) ==");
    for (config, tput) in runner.voltdb_throughput(YcsbWorkload::A, 32) {
        println!("  {config:<24} {tput:>10.0}");
    }

    println!("\n== VoltDB profiling (workload A, single-disaggregated) ==");
    for parts in [4u32, 16, 32, 64] {
        let p = VoltDb::new(runner.model(SystemConfig::SingleDisaggregated), parts)
            .profile(YcsbWorkload::A);
        println!(
            "  {parts:>2} partitions: package IPC {:.2}, UCC {:.1}, back-end stalls {:.0}%",
            p.package_ipc,
            p.ucc,
            p.backend_stall_fraction * 100.0
        );
    }

    println!("\n== Memcached ETC, 64 clients (mean / p90 latency µs) ==");
    let bench = MemcachedBench {
        clients: 64,
        workers: 8,
        requests_per_client: 800,
    };
    for config in SystemConfig::ALL {
        let (stats, svc) = bench.run(runner.model(config), 11);
        println!(
            "  {config:<24} {:>7.0} / {:>7.0}   (hit ratio {:.0}%)",
            stats.mean_us(),
            stats.quantile_us(0.9),
            svc.cache().hit_ratio() * 100.0
        );
    }

    println!("\n== Elasticsearch nested track @32 shards (ops/s) ==");
    print!("  {:<24}", "config");
    for ch in Challenge::ALL {
        print!(" {:>9}", ch.label());
    }
    println!();
    for config in SystemConfig::ALL {
        print!("  {config:<24}");
        for ch in Challenge::ALL {
            let t = Elasticsearch::new(runner.model(config), 32).throughput_ops(ch);
            print!(" {t:>9.0}");
        }
        println!();
    }

    println!(
        "\nconclusion (paper §VIII): many cloud workloads already run acceptably\n\
         on disaggregated memory; latency-sensitive scans need OS/caching help."
    );
}
