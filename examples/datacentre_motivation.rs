//! The §II motivation experiment: how much utilization does
//! disaggregation buy a data centre? (A compact Fig. 1.)
//!
//! ```text
//! cargo run --release --example datacentre_motivation
//! ```

use thymesisflow::dcsim::model::{DisaggregatedDataCentre, FixedDataCentre};
use thymesisflow::dcsim::scheduler::{params_for_utilization, run_trace};
use thymesisflow::dcsim::trace::TraceGenerator;

fn main() {
    let units = 400;
    let tasks = 30_000;
    let params = params_for_utilization(units, 0.88, 0.71);

    let mut gen = TraceGenerator::new(params.clone(), 42);
    let mut fixed = FixedDataCentre::new(units);
    let (f, facc) = run_trace(&mut fixed, &mut gen, tasks, 0.5, 40);

    let mut gen = TraceGenerator::new(params, 42);
    let mut disagg = DisaggregatedDataCentre::new(units);
    let (d, dacc) = run_trace(&mut disagg, &mut gen, tasks, 0.5, 40);

    println!("{units} units, {tasks} tasks, online best-fit, no overcommit\n");
    println!("{:<28}{:>10}{:>16}", "metric", "fixed", "disaggregated");
    println!("{}", "-".repeat(54));
    let pct = |x: f64| format!("{:.1}%", x * 100.0);
    println!("{:<28}{:>10}{:>16}", "CPU fragmentation", pct(f.cpu_frag), pct(d.cpu_frag));
    println!("{:<28}{:>10}{:>16}", "MEM fragmentation", pct(f.mem_frag), pct(d.mem_frag));
    println!("{:<28}{:>10}{:>16}", "CPU units off", pct(f.cpu_off), pct(d.cpu_off));
    println!("{:<28}{:>10}{:>16}", "MEM units off", pct(f.mem_off), pct(d.mem_off));
    println!(
        "{:<28}{:>10}{:>16}",
        "rejected requests",
        pct(facc.rejection_ratio()),
        pct(dacc.rejection_ratio())
    );
    println!(
        "\nunlocking resource proportionality defragments the workload mix:\n\
         memory stranded behind CPU-full servers becomes allocatable, and\n\
         whole memory modules can be switched off."
    );
}
