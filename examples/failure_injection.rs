//! Failure injection: drive the LLC reliability machinery over an
//! increasingly lossy link and watch the credit/replay protocol keep the
//! channel exactly-once and in-order, then demonstrate the wire format's
//! CRC catching real bit damage.
//!
//! ```text
//! cargo run --example failure_injection
//! ```

use thymesisflow::llc::frame::{assemble, FrameId};
use thymesisflow::llc::link::LlcLink;
use thymesisflow::llc::wire::{decode, encode, WireError};
use thymesisflow::llc::{Frame, LlcConfig};
use thymesisflow::netsim::fault::FaultSpec;

type Msg = (u32, usize);

fn main() {
    println!("== LLC under injected faults (1000 messages per run) ==");
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>12}",
        "drop %", "corrupt %", "frames sent", "replayed", "finish (us)"
    );
    let msgs: Vec<Msg> = (0..1000).map(|i| (i, 1 + (i as usize % 5))).collect();
    for (drop, corrupt) in [(0.0, 0.0), (0.01, 0.01), (0.05, 0.05), (0.10, 0.10), (0.15, 0.25)] {
        let mut link = LlcLink::new(
            LlcConfig::default(),
            FaultSpec::new(drop, corrupt),
            2026,
        );
        let delivered = link
            .run_to_completion(msgs.clone())
            .expect("link makes progress");
        assert_eq!(delivered, msgs, "reliability violated");
        println!(
            "{:>12.1} {:>12.1} {:>12} {:>12} {:>12.1}",
            drop * 100.0,
            corrupt * 100.0,
            link.tx_a().frames_sent(),
            link.total_replays(),
            link.now().as_us_f64(),
        );
    }
    println!("every run delivered all 1000 messages exactly once, in order\n");

    println!("== wire-format CRC vs bit damage ==");
    let (frames, _) = assemble(vec![(7u32, 3usize), (9, 2)], 8, FrameId(0), 0);
    let clean = encode(&frames[0]);
    let ok: Frame<Msg> = decode(&clean).expect("clean frame decodes");
    println!("clean frame: {} bytes -> {:?}", clean.len(), ok.id());
    let mut caught = 0;
    let total = clean.len() * 8;
    for bit in 0..total {
        let mut damaged = clean.clone();
        damaged[bit / 8] ^= 1 << (bit % 8);
        match decode::<Msg>(&damaged) {
            Err(WireError::BadCrc { .. }) | Err(WireError::BadMagic) | Err(_) => caught += 1,
            Ok(f) if f == frames[0] => {} // damage in dead padding
            Ok(_) => panic!("undetected corruption at bit {bit}"),
        }
    }
    println!("flipped each of {total} bits once: {caught} rejected, 0 silent corruptions");
}
