//! Failure injection: stream over full fabric paths with increasingly
//! lossy channels and watch the LLC credit/replay protocol keep every
//! transaction exactly-once (at a bandwidth cost), then demonstrate the
//! wire format's CRC catching real bit damage.
//!
//! ```text
//! cargo run --example failure_injection
//! ```

use thymesisflow::core::fabric::{FabricBuilder, PathSpec};
use thymesisflow::core::params::DatapathParams;
use thymesisflow::llc::frame::{assemble, FrameId};
use thymesisflow::llc::wire::{decode, encode, WireError};
use thymesisflow::llc::Frame;
use thymesisflow::netsim::fault::FaultSpec;
use thymesisflow::simkit::time::SimTime;

type Msg = (u32, usize);

fn main() {
    println!("== fabric path under injected channel faults (100 us stream) ==");
    println!(
        "{:>10} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "drop %", "corrupt %", "GiB/s", "completions", "frames", "replays"
    );
    let mut lossless = None;
    for (drop, corrupt) in [(0.0, 0.0), (0.001, 0.001), (0.005, 0.005), (0.02, 0.02)] {
        // Same reference topology every run; only the fault process on
        // the path's channels changes.
        let spec = PathSpec::reference(256 << 20, 1)
            .with_faults(FaultSpec::new(drop, corrupt))
            .labelled("lossy");
        let (mut fabric, paths) = FabricBuilder::new(DatapathParams::prototype())
            .path(spec)
            .build()
            .expect("reference topology assembles");
        let path = paths[0];
        let rate = fabric
            .measure_stream_bandwidth(path, 8, 32, SimTime::from_us(100))
            .expect("replay keeps the stream progressing")
            .as_gib_per_sec();
        let stats = fabric.path_link_stats(path).expect("live path")[0];
        println!(
            "{:>10.1} {:>10.1} {:>10.2} {:>12} {:>10} {:>10}",
            drop * 100.0,
            corrupt * 100.0,
            rate,
            fabric.completions(path).expect("live path").count(),
            stats.fwd_frames + stats.rev_frames,
            stats.up_replays + stats.down_replays,
        );
        match lossless {
            None => lossless = Some(rate),
            Some(base) => assert!(
                rate <= base,
                "faults cannot raise bandwidth: {rate} > {base}"
            ),
        }
    }
    println!("every completed load is exactly-once; loss only costs bandwidth\n");

    println!("== wire-format CRC vs bit damage ==");
    let (frames, _) = assemble(vec![(7u32, 3usize), (9, 2)], 8, FrameId(0), 0);
    let clean = encode(&frames[0]);
    let ok: Frame<Msg> = decode(&clean).expect("clean frame decodes");
    println!("clean frame: {} bytes -> {:?}", clean.len(), ok.id());
    let mut bad_magic = 0;
    let mut bad_crc = 0;
    let total = clean.len() * 8;
    for bit in 0..total {
        let mut damaged = clean.clone();
        damaged[bit / 8] ^= 1 << (bit % 8);
        // Exactly two outcomes are legitimate: a flip inside the two
        // magic bytes fails the magic check, and every other flip —
        // including one in the CRC field itself — fails the CRC. Any
        // other error kind (or a clean decode) is a detector hole.
        match decode::<Msg>(&damaged) {
            Err(WireError::BadMagic) => {
                assert!(bit < 16, "bit {bit} outside the magic raised BadMagic");
                bad_magic += 1;
            }
            Err(WireError::BadCrc { .. }) => {
                assert!(bit >= 16, "bit {bit} inside the magic raised BadCrc");
                bad_crc += 1;
            }
            Err(e) => panic!("unexpected decode error at bit {bit}: {e}"),
            Ok(_) => panic!("undetected corruption at bit {bit}"),
        }
    }
    assert_eq!(bad_magic, 16, "every magic bit must trip the magic check");
    assert_eq!(bad_crc, total - 16, "every other bit must trip the CRC");
    println!(
        "flipped each of {total} bits once: {bad_magic} bad-magic + {bad_crc} bad-crc, 0 silent corruptions"
    );
}
