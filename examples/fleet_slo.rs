//! Fleet SLO harness: thousands of simulated clients on a 4×4 torus,
//! walked through a diurnal steady → peak → recovery ladder with a
//! chaos ladder (hot-route cut, bonded-lane degradation, donor crash)
//! injected at the peak.
//!
//! Two arms run back to back:
//!
//! 1. **chaos** — [`FleetScenario::standard`]: clients are dealt to
//!    eight SLO-contracted leases with zipf hotspot skew, churn tenants
//!    arrive and leave between phases, budgets are calibrated from an
//!    undisturbed slice, then the peak phase cuts the hot route's
//!    interior link, fails one bonded lane and crashes donor `n23`.
//!    The run must end with breaches — that is the point.
//! 2. **control** — [`FleetScenario::control`]: the identical fleet
//!    with every chaos rung removed. It must end with zero breaches,
//!    proving the calibrated budgets are not trigger-happy.
//!
//! The chaos arm's structured report lands in `target/fleet_slo.json`
//! where `ci.sh` gates its schema and breach vocabulary.
//!
//! ```text
//! cargo run --example fleet_slo
//! ```

use thymesisflow::workloads::fleet::FleetScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 42;

    // ---- chaos arm ----------------------------------------------------
    let scenario = FleetScenario::standard(seed);
    let report = scenario.run(4)?;
    println!(
        "fleet '{}': {} clients on a {}, {} phases, {} breaches",
        report.scenario,
        report.clients,
        report.topology,
        report.phases.len(),
        report.breaches.len(),
    );
    for phase in &report.phases {
        println!(
            "  phase {:<9} load {:>4.2}  windows {:>3}  completed {:>7}  breaches {:>3}  chaos {:?}",
            phase.name, phase.load, phase.windows, phase.completed, phase.breaches, phase.chaos,
        );
    }
    for lease in &report.leases {
        println!(
            "  lease {:>2} {:<9} {}<-{}  clients {:>4}  p99 {:>6} ns  p99.9 {:>6} ns  avail {:.4}",
            lease.lease,
            lease.class,
            lease.borrower,
            lease.donor,
            lease.clients,
            lease.p99_ns,
            lease.p999_ns,
            lease.availability,
        );
    }
    if let Some(h) = &report.hottest {
        println!(
            "  hottest link {} on {}: {:.0}% busy, {} ns stalled, {} frames",
            h.link,
            h.host,
            h.utilization * 100.0,
            h.stall_ns,
            h.frames,
        );
    }
    assert!(
        !report.breaches.is_empty(),
        "the chaos ladder must blow at least one calibrated contract"
    );
    assert!(
        report.breaches_in("steady").is_empty(),
        "the pre-chaos phase must hold its contracts"
    );

    // ---- control arm --------------------------------------------------
    let control = FleetScenario::control(seed).run(4)?;
    println!(
        "control '{}': {} breaches (must be 0)",
        control.scenario,
        control.breaches.len(),
    );
    assert!(
        control.breaches.is_empty(),
        "the undisturbed control arm must not breach"
    );

    // ---- export -------------------------------------------------------
    std::fs::create_dir_all("target")?;
    std::fs::write("target/fleet_slo.json", report.to_json())?;
    println!("wrote target/fleet_slo.json");
    Ok(())
}
