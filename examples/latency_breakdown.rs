//! The paper's headline number, reproduced as a checked artifact: a
//! remote load's 950 ns load-to-use latency decomposed into 6 serDES
//! crossings and 4 FPGA-stack stages (ThymesisFlow, MICRO 2020, §VI).
//!
//! One load is traced at flit granularity — every span is a contiguous
//! checkpoint difference, so the per-hop attribution sums *exactly* to
//! the measured RTT — then the aggregate breakdown table, the telemetry
//! registry snapshot and a Chrome `trace_event` export are printed for
//! both the raw fabric and the rack-lease surfaces.
//!
//! ```text
//! cargo run --example latency_breakdown
//! ```

use serde::Value;
use thymesisflow::core::attach::AttachRequest;
use thymesisflow::core::fabric::{chrome_trace_json, FabricBuilder, HopKind};
use thymesisflow::core::params::DatapathParams;
use thymesisflow::core::rack::{NodeConfig, RackBuilder};
use thymesisflow::simkit::units::GIB;

/// Loads to aggregate into the breakdown table.
const LOADS: usize = 32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // -- 1. One traced load over the reference point-to-point fabric --
    let (mut fabric, path) =
        FabricBuilder::point_to_point(DatapathParams::prototype(), 2, 256 << 20)?;
    fabric.set_telemetry(true);

    let trace = fabric.measure_traced_load(path)?;
    println!("== one traced load, span by span (trace {:?}) ==", trace.trace);
    for span in &trace.spans {
        println!("  {:<22} {:>9.2} ns", span.kind.to_string(), span.duration().as_ns_f64());
    }
    println!(
        "  {:<22} {:>9.2} ns  (spans sum exactly to the measured RTT)",
        "= load-to-use",
        trace.rtt().as_ns_f64()
    );
    assert_eq!(
        trace.spans_total(),
        trace.rtt(),
        "span accounting must be exact, not approximate"
    );
    assert_eq!(trace.serdes_crossings(), 6, "paper counts 6 serDES crossings");
    assert_eq!(trace.stack_stages(), 4, "paper counts 4 FPGA stack stages");

    // -- 2. The aggregate paper-style table over many loads --
    for _ in 1..LOADS {
        fabric.measure_traced_load(path)?;
    }
    let breakdown = fabric.path_breakdown(path)?;
    println!();
    println!("{}", breakdown.table());

    let serdes = breakdown.row(HopKind::SerDes(
        thymesisflow::core::fabric::SerdesSite::ComputeTx,
    ));
    let params = fabric.params().clone();
    println!("paper prototype:  950 ns = 6 serDES crossings x 75 ns + 4 stack stages x 101 ns + DRAM + wire");
    println!(
        "this model:      {:>4.0} ns = 6 serDES crossings x {:.0} ns + 4 stack stages x {:.0} ns + DRAM + wire",
        breakdown.mean_rtt_ns,
        serdes.map_or(0.0, |r| r.mean_ns),
        breakdown
            .row(HopKind::Stack(
                thymesisflow::core::fabric::StackSite::ComputeTx
            ))
            .map_or(0.0, |r| r.mean_ns),
    );
    println!(
        "(calibration: serdes_crossing_ns={} stack_crossing_ns={} dram_latency_ns={})",
        params.serdes_crossing_ns, params.stack_crossing_ns, params.dram_latency_ns
    );

    // -- 3. Chrome trace_event export, validated by parsing it back --
    let json = chrome_trace_json(fabric.traces());
    let parsed: Value = serde_json::from_str(&json)?;
    let events = parsed
        .get("traceEvents")
        .and_then(|e| match e {
            Value::Seq(items) => Some(items.len()),
            _ => None,
        })
        .ok_or("chrome trace export lost its traceEvents array")?;
    let out = std::path::Path::new("target").join("latency_breakdown.trace.json");
    std::fs::write(&out, &json)?;
    println!();
    println!(
        "chrome trace: {events} events from {} traces -> {} ({} bytes, parses OK)",
        fabric.traces().len(),
        out.display(),
        json.len()
    );

    // -- 4. The same surfaces through a software-defined rack lease --
    let mut rack = RackBuilder::new()
        .node(NodeConfig::ac922("borrower"))
        .node(NodeConfig::ac922("donor"))
        .cable("borrower", "donor")
        .build()?;
    let lease = rack.attach(AttachRequest::new("borrower", "donor", 32 * GIB))?;
    rack.set_lease_telemetry(lease.id(), true)?;
    let bd = rack.lease_breakdown(lease.id())?;
    println!();
    println!(
        "rack lease {}: mean load-to-use {:.0} ns over {} traced load(s), {} crossings / {} stack stages",
        lease.id(),
        bd.mean_rtt_ns,
        bd.loads,
        bd.serdes_crossings_per_load(),
        bd.stack_stages_per_load(),
    );
    let snap = rack.lease_telemetry(lease.id())?;
    println!(
        "lease telemetry @ {} ns: issued={} retired={} (registry exports {} metric paths)",
        snap.at.as_ns(),
        snap.counter("fabric.loads.issued").unwrap_or(0),
        snap.counter("fabric.loads.retired").unwrap_or(0),
        snap.metrics.len()
    );
    Ok(())
}
