//! Observatory: the fleet observability plane on a contended 4×4 torus
//! rack — continuous telemetry windows, a link-name congestion heatmap,
//! per-lease SLO monitors and the causal event journal, all under a
//! mid-workload link cut.
//!
//! Four scenes:
//!
//! 1. **Contend** — four leases borrow through `n00`; two of them hammer
//!    the same two-hop route, so its links saturate while the rest of
//!    the torus idles. A [`Recorder`] polls the telemetry registry on a
//!    fixed sim-time cadence the whole way.
//! 2. **Heatmap** — the [`CongestionReport`] ranks every cabled link by
//!    utilization / credit-stall time / carried frames; the hottest link
//!    must be one the contended route crosses.
//! 3. **Cut** — chaos kills the contended route's interior link. The
//!    torus re-routes, the disruption blows the victim lease's p99
//!    budget, and [`Rack::evaluate_slos`] turns that into a typed
//!    breach plus a journal record.
//! 4. **Export** — the Prometheus exposition and the merged JSONL
//!    journal land in `target/` where `ci.sh` validates them.
//!
//! ```text
//! cargo run --example observatory
//! ```

use thymesisflow::core::attach::AttachRequest;
use thymesisflow::core::fabric::{ChaosPlan, JournalKind, SloSpec};
use thymesisflow::core::rack::{NodeConfig, RackBuilder};
use thymesisflow::simkit::obs::{prometheus_exposition, Recorder};
use thymesisflow::simkit::time::SimTime;
use thymesisflow::simkit::units::GIB;

fn node(r: usize, c: usize) -> String {
    format!("n{r}{c}")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- a 4x4 torus rack, cabled row-wise and column-wise ------------
    let mut builder = RackBuilder::new();
    for r in 0..4 {
        for c in 0..4 {
            builder = builder.node(NodeConfig::ac922(&node(r, c)));
        }
    }
    for r in 0..4 {
        for c in 0..4 {
            builder = builder
                .cable(&node(r, c), &node(r, (c + 1) % 4))
                .cable(&node(r, c), &node((r + 1) % 4, c));
        }
    }
    let mut rack = builder.build()?;
    rack.set_observability(true); // fabric journals on from first attach

    // ---- scene 1: four leases, two of them fighting for one route -----
    // `victim` and `rival` borrow from the same two-hop-distant donor,
    // so every frame of theirs crosses the same pair of torus cables.
    // `near` borrows one hop out on that route; `control` borrows down
    // the orthogonal column and should never breach.
    let victim = rack.attach_with_slo(
        AttachRequest::new("n00", "n02", 8 * GIB),
        SloSpec::new().availability(0.999),
    )?;
    let rival = rack.attach(AttachRequest::new("n00", "n02", 8 * GIB))?;
    let control = rack.attach_with_slo(
        AttachRequest::new("n00", "n20", 8 * GIB),
        SloSpec::new().availability(0.999),
    )?;

    let vpath = rack.lease_path(victim.id()).expect("victim lease is live");
    let fabric = rack.fabric("n00").expect("attaches built the fabric");
    let link_names = fabric.topology_link_names();
    let route = fabric.topology_route(vpath).expect("victim lease is routed");
    let route_links: Vec<String> =
        route.links.iter().map(|&l| link_names[l].clone()).collect();
    let via: Vec<String> = route_links[0].split('-').map(str::to_string).collect();
    let near = rack.attach(AttachRequest::new("n00", &via[1], 8 * GIB))?;
    println!("== scene 1: contend ==");
    println!(
        "torus 4x4: {} cables; {} and {} contend over {} ({} hops), {} idles on the column",
        link_names.len(),
        victim.id(),
        rival.id(),
        route_links.join(" + "),
        route.hops(),
        control.id(),
    );

    rack.set_lease_telemetry(victim.id(), true)?;
    let mut recorder = Recorder::new(SimTime::from_us(20), 16);
    let loads = [
        (victim.id(), 8, 32),
        (rival.id(), 8, 32),
        (near.id(), 1, 2),
        (control.id(), 1, 2),
    ];
    for _segment in 0..5 {
        rack.run_lease_streams(&loads, SimTime::from_us(20))?;
        let fabric = rack.fabric_mut("n00").expect("fabric is live");
        let now = fabric.now();
        if recorder.due(now) {
            let snap = fabric.telemetry_snapshot();
            recorder.record(snap);
        }
        let breaches = rack.evaluate_slos()?;
        assert!(breaches.is_empty(), "steady state must not breach: {breaches:?}");
    }
    let retired: Vec<String> = recorder
        .deltas("fabric.loads.retired")
        .iter()
        .map(|(at, d)| format!("{}us:+{d}", at.as_ns() / 1_000))
        .collect();
    println!(
        "recorder: {} windows every {}, loads retired per window: {}",
        recorder.windows().count(),
        recorder.period(),
        retired.join(" "),
    );

    // ---- scene 2: the heatmap agrees with where the fight is ----------
    println!("\n== scene 2: heatmap ==");
    let report = rack
        .congestion_report("n00")
        .expect("borrower fabric reports congestion");
    print!("{}", report.render());
    let hottest = report.hottest().expect("traffic flowed").name.clone();
    assert!(
        route_links.contains(&hottest),
        "hottest link {hottest} must sit on the contended route {route_links:?}",
    );
    println!("hottest link: {hottest} -- on the contended route, as injected");

    // ---- scene 3: cut the contended interior link under SLO -----------
    // Calibrate the p99 budget from the steady-state window, then judge
    // the chaos window against it: the re-route disruption (loss
    // detection, replay, a longer detour) must blow the budget.
    let fabric = rack.fabric("n00").expect("fabric is live");
    let steady_p99 = fabric.completions(vpath)?.quantile(0.99);
    let budget = SimTime::from_ns(steady_p99 * 2);
    rack.set_lease_slo(
        victim.id(),
        SloSpec::new().p99(budget).availability(0.999),
    )?;
    let _ = rack.evaluate_slos()?; // consume the pre-chaos history
    let interior = route_links[1].clone();
    println!("\n== scene 3: cut ==");
    println!(
        "steady p99 {steady_p99} ns -> contracted budget {} ns; cutting '{interior}'",
        budget.as_ns(),
    );
    {
        let fabric = rack.fabric_mut("n00").expect("fabric is live");
        let at = fabric.now() + SimTime::from_us(5);
        fabric.schedule_chaos(&ChaosPlan::new().link_down_named(at, &interior));
    }
    rack.run_lease_streams(&loads, SimTime::from_us(40))?;
    {
        let fabric = rack.fabric_mut("n00").expect("fabric is live");
        if recorder.due(fabric.now()) {
            let snap = fabric.telemetry_snapshot();
            recorder.record(snap);
        }
    }
    let breaches = rack.evaluate_slos()?;
    assert!(
        breaches.iter().any(|b| b.lease == victim.id().0),
        "the lease crossing the cut link must breach, got {breaches:?}",
    );
    assert!(
        breaches.iter().all(|b| b.lease != control.id().0),
        "the column lease never crossed the cut link: {breaches:?}",
    );
    for b in &breaches {
        println!("breach: lease#{} at {} ns: {}", b.lease, b.at.as_ns(), b.kind);
    }
    let report = rack.congestion_report("n00").expect("fabric is live");
    let cut = report.get(&interior).expect("cut link is still a row");
    assert!(cut.down, "the heatmap must flag the cut link DOWN");
    println!("heatmap now flags {interior} DOWN; detour re-routed the lease");

    // ---- scene 4: export what the fleet would scrape ------------------
    println!("\n== scene 4: export ==");
    let snap = rack
        .fabric_mut("n00")
        .expect("fabric is live")
        .telemetry_snapshot();
    let exposition = prometheus_exposition(&snap);
    let prom_path = std::path::Path::new("target").join("observatory.prom");
    std::fs::write(&prom_path, &exposition)?;

    let fabric_journal = rack
        .fabric("n00")
        .and_then(|f| f.journal())
        .expect("observability was enabled");
    let mut jsonl = fabric_journal.to_jsonl();
    jsonl.push_str(&rack.journal().to_jsonl());
    let journal_path = std::path::Path::new("target").join("observatory.journal.jsonl");
    std::fs::write(&journal_path, &jsonl)?;

    println!(
        "prometheus: {} metric families -> {}",
        exposition.lines().filter(|l| l.starts_with("# TYPE")).count(),
        prom_path.display(),
    );
    println!(
        "journal: {} fabric + {} rack records -> {}",
        fabric_journal.len(),
        rack.journal().len(),
        journal_path.display(),
    );
    assert!(
        fabric_journal.of_kind(JournalKind::Reroute).next().is_some(),
        "the cut must have journaled a re-route",
    );
    assert!(
        rack.journal().of_kind(JournalKind::SloBreach).next().is_some(),
        "the breach must have journaled",
    );
    println!("rack journal tail:");
    for rec in rack.journal().tail(4) {
        let lease = rec.lease.map(|l| format!(" lease#{l}")).unwrap_or_default();
        println!("  #{} @ {} ns {}{}: {}", rec.seq, rec.at.as_ns(), rec.kind, lease, rec.detail);
    }
    println!("fabric journal tail:");
    for rec in fabric_journal.tail(4) {
        let links = if rec.links.is_empty() {
            String::new()
        } else {
            format!(" [{}]", rec.links.join(", "))
        };
        println!("  #{} @ {} ns {}{}: {}", rec.seq, rec.at.as_ns(), rec.kind, links, rec.detail);
    }

    println!("\nobservatory: telemetry, heatmap, SLOs and journal agree on one story");
    Ok(())
}
