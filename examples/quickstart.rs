//! Quickstart: build a two-node rack, attach disaggregated memory, run
//! STREAM on it, detach.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use thymesisflow::core::attach::AttachRequest;
use thymesisflow::core::config::SystemConfig;
use thymesisflow::core::rack::{NodeConfig, RackBuilder};
use thymesisflow::simkit::units::GIB;
use thymesisflow::workloads::stream::StreamBench;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Two AC922s wired with two 100 Gbit/s direct-attach channels.
    let mut rack = RackBuilder::new()
        .node(NodeConfig::ac922("borrower"))
        .node(NodeConfig::ac922("donor"))
        .cable("borrower", "donor")
        .build()?;

    // 2. Attach 64 GiB of the donor's memory to the borrower, bonded.
    let lease = rack.attach(AttachRequest::new("borrower", "donor", 64 * GIB).bonded())?;
    println!(
        "attached {} GiB from '{}' to '{}' as NUMA {} (bonded: {})",
        lease.bytes() / GIB,
        lease.memory(),
        lease.compute(),
        lease.numa_node(),
        lease.is_bonded(),
    );
    let host = rack.host("borrower").expect("host exists");
    println!(
        "borrower now sees {} NUMA nodes, {} GiB local + {} GiB remote",
        host.numa().nodes().len(),
        host.local_bytes() / GIB,
        host.remote_bytes() / GIB,
    );
    println!(
        "remote load-to-use latency: {} (local: {})",
        rack.params().remote_load_latency(),
        rack.params().local_load_latency(),
    );

    // 3. Run STREAM against the three ThymesisFlow configurations.
    println!("\nSTREAM (copy kernel, GiB/s):");
    for threads in [4u32, 8, 16] {
        let mut line = format!("  {threads:>2} threads:");
        for config in SystemConfig::THYMESISFLOW {
            let gib = StreamBench::paper(threads).run(&rack.memory_model(config))[0].gib_per_sec;
            line.push_str(&format!("  {config}={gib:.1}"));
        }
        println!("{line}");
    }

    // 4. Tear down.
    rack.detach(lease.id())?;
    println!("\ndetached; borrower remote bytes: {}", rack.host("borrower").unwrap().remote_bytes());
    Ok(())
}
