//! Software-defined orchestration, end to end: compose a logical server
//! from two donors' memory, watch every lease materialise as a
//! flit-level fabric path (section tables, router routes, LLC channels),
//! measure the paths, exercise access control, inspect the audit trail.
//!
//! ```text
//! cargo run --example rack_orchestration
//! ```

use thymesisflow::core::attach::AttachRequest;
use thymesisflow::core::rack::{NodeConfig, RackBuilder};
use thymesisflow::ctrlplane::api::{AttachSpec, Request};
use thymesisflow::ctrlplane::auth::Role;
use thymesisflow::simkit::time::SimTime;
use thymesisflow::simkit::units::GIB;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A three-node rack: node-a will borrow from both neighbours.
    let mut rack = RackBuilder::new()
        .node(NodeConfig::ac922("node-a"))
        .node(NodeConfig::ac922("node-b"))
        .node(NodeConfig::ac922("node-c"))
        .cable("node-a", "node-b")
        .cable("node-a", "node-c")
        .build()?;

    // Each attach runs the full flow — authorize, path search, signed
    // agent configs, donor pin, borrower hotplug — and then wires the
    // lease's flit-level path on the borrower's fabric.
    let l1 = rack.attach(AttachRequest::new("node-a", "node-b", 32 * GIB))?;
    let l2 = rack.attach(AttachRequest::new("node-a", "node-c", 16 * GIB))?;
    for l in [&l1, &l2] {
        println!(
            "{}: {} GiB from '{}' at window {:#x}, network {}",
            l.id(),
            l.bytes() / GIB,
            l.memory(),
            l.window_base(),
            l.network_id(),
        );
    }

    // The borrower's fabric now carries both paths as typed components.
    let fabric = rack.fabric("node-a").expect("leases instantiated a fabric");
    println!(
        "node-a fabric: {} components, {} checked connections, live paths {:?}",
        fabric.components().len(),
        fabric.connections().len(),
        fabric.path_ids(),
    );

    // Leased memory is exercised at flit granularity.
    let rtt = rack.measure_lease_rtt(l1.id())?;
    println!("lease 1 uncontended load-to-use: {rtt}");
    let rates = rack.run_lease_streams(
        &[(l1.id(), 8, 32), (l2.id(), 8, 32)],
        SimTime::from_us(100),
    )?;
    for (l, rate) in [&l1, &l2].iter().zip(&rates) {
        println!(
            "{} sustained {:.2} GiB/s over its channel",
            l.id(),
            rate.as_gib_per_sec()
        );
    }

    // Access control still gates the REST-style interface: a tenant
    // scoped to {node-a, node-b} may not touch node-c.
    let tenant = rack
        .control_plane_mut()
        .auth_mut()
        .issue_token(Role::Tenant {
            hosts: vec!["node-a".into(), "node-b".into()],
        });
    let req = serde_json::to_string(&Request::Attach {
        token: tenant,
        spec: AttachSpec {
            compute_host: "node-a".into(),
            memory_host: "node-c".into(),
            bytes: 8 * GIB,
            bonded: false,
        },
    })?;
    println!(
        "tenant POST /flows (node-c) -> {}",
        rack.control_plane_mut().handle_json(&req)
    );

    // Detach tears the fabric paths back down with the leases.
    rack.detach(l1.id())?;
    rack.detach(l2.id())?;
    println!(
        "after detach: remote bytes {}, fabric paths {:?}",
        rack.host("node-a").expect("host").remote_bytes(),
        rack.fabric("node-a").expect("fabric").path_ids(),
    );

    println!("\naudit trail:");
    for e in rack.control_plane_mut().audit() {
        println!("  [{:>3}] {}", e.seq, e.event);
    }
    Ok(())
}
