//! Software-defined orchestration: drive the control plane through its
//! REST-style JSON interface, exercise access control, inspect the
//! audit trail.
//!
//! ```text
//! cargo run --example rack_orchestration
//! ```

use thymesisflow::ctrlplane::api::{AttachSpec, Request};
use thymesisflow::ctrlplane::auth::Role;
use thymesisflow::ctrlplane::service::ControlPlane;
use thymesisflow::simkit::units::GIB;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A three-node rack behind one circuit switch.
    let mut cp = ControlPlane::new("demo-secret");
    for host in ["node-a", "node-b", "node-c"] {
        cp.register_host(host, 2, 512 * GIB);
    }
    cp.add_switch(
        "tor-switch",
        &[
            ("node-a", 0),
            ("node-b", 0),
            ("node-c", 0),
            ("node-a", 1),
            ("node-b", 1),
            ("node-c", 1),
        ],
        100.0,
    );

    let admin = cp.auth_mut().issue_token(Role::Admin);
    let tenant = cp.auth_mut().issue_token(Role::Tenant {
        hosts: vec!["node-a".into(), "node-b".into()],
    });

    // The tenant composes a logical server: node-a borrows from node-b.
    let req = serde_json::to_string(&Request::Attach {
        token: tenant.clone(),
        spec: AttachSpec {
            compute_host: "node-a".into(),
            memory_host: "node-b".into(),
            bytes: 32 * GIB,
            bonded: false,
        },
    })?;
    println!("POST /flows  -> {}", cp.handle_json(&req));

    // The tenant may NOT touch node-c.
    let req = serde_json::to_string(&Request::Attach {
        token: tenant.clone(),
        spec: AttachSpec {
            compute_host: "node-a".into(),
            memory_host: "node-c".into(),
            bytes: 8 * GIB,
            bonded: false,
        },
    })?;
    println!("POST /flows  -> {}", cp.handle_json(&req));

    // The admin can.
    let req = serde_json::to_string(&Request::Attach {
        token: admin.clone(),
        spec: AttachSpec {
            compute_host: "node-a".into(),
            memory_host: "node-c".into(),
            bytes: 8 * GIB,
            bonded: false,
        },
    })?;
    println!("POST /flows  -> {}", cp.handle_json(&req));

    let req = serde_json::to_string(&Request::Status { token: admin.clone() })?;
    println!("GET  /status -> {}", cp.handle_json(&req));

    // Tear flow 1 down.
    let req = serde_json::to_string(&Request::Detach { token: admin, flow: 1 })?;
    println!("DELETE /flows/1 -> {}", cp.handle_json(&req));

    println!("\naudit trail:");
    for e in cp.audit() {
        println!("  [{:>3}] {}", e.seq, e.event);
    }
    Ok(())
}
