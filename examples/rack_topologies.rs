//! Rack topologies: the same fabric over a Line, a Ring, a 2-D Torus
//! and a 2-tier Clos, all behind one `Topology` trait.
//!
//! Four scenes:
//!
//! 1. **Route anatomy** — every canned shape answers `get_route`
//!    deterministically; hop counts follow the topology's geometry.
//! 2. **Multi-hop cost** — on a line, each extra interior hop adds a
//!    fixed increment to the uncontended RTT; the example measures it.
//! 3. **Adaptive re-route** — a 4×4 torus loses an interior link
//!    mid-workload; the route is rebuilt around the cut and every load
//!    still resolves exactly once.
//! 4. **Topology cuts** — the same torus partitioned along its two
//!    row seams runs 1-vs-N-worker bit-identically.
//!
//! ```text
//! cargo run --example rack_topologies
//! ```

use thymesisflow::core::fabric::{
    ChaosPlan, FabricBuilder, PartitionedFabric, PathSpec, WorkloadSpec,
};
use thymesisflow::core::params::DatapathParams;
use thymesisflow::routing::topology::{Clos, Line, Ring, Topology, Torus2D};
use thymesisflow::simkit::time::SimTime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- scene 1: four shapes, one trait ------------------------------
    println!("== route anatomy: one trait, four shapes ==");
    let line = Line::new(6)?;
    let ring = Ring::new(6)?;
    let torus = Torus2D::new(4, 4)?;
    let clos = Clos::new(2, 3, 4)?;
    let shapes: [(&str, &dyn Topology, _, _); 4] = [
        ("line(6)", &line, line.node_named("h0").unwrap(), line.node_named("h5").unwrap()),
        ("ring(6)", &ring, ring.node_named("h0").unwrap(), ring.node_named("h5").unwrap()),
        ("torus(4x4)", &torus, torus.host_at(0, 0), torus.host_at(2, 2)),
        ("clos(2x3x4)", &clos, clos.node_named("h0").unwrap(), clos.node_named("h11").unwrap()),
    ];
    for (name, topo, src, dst) in shapes {
        let route = topo.get_route(src, dst)?;
        let via: Vec<&str> = route
            .nodes
            .iter()
            .map(|&n| topo.nodes()[n.0 as usize].name.as_str())
            .collect();
        println!(
            "  {name:<12} {} nodes, {} links; {} -> {}: {} hop(s) via {}",
            topo.nodes().len(),
            topo.links().len(),
            via[0],
            via[via.len() - 1],
            route.hops(),
            via.join(" "),
        );
    }

    // ---- scene 2: the price of a hop ----------------------------------
    println!("\n== multi-hop cost on a line ==");
    let mut rtts = Vec::new();
    for n in 2..=5usize {
        let line = Line::new(n)?;
        let (mut fabric, paths) =
            FabricBuilder::from_topology(DatapathParams::prototype(), &line, line.node_named("h0").unwrap())
                .path_to(
                    line.node_named(&format!("h{}", n - 1)).unwrap(),
                    PathSpec::reference(256 << 20, 2),
                )
                .build()?;
        let rtt = fabric.measure_load_latency(paths[0])?;
        println!("  h0 -> h{} ({} hop{}): {rtt}", n - 1, n - 1, if n > 2 { "s" } else { "" });
        rtts.push(rtt);
    }
    println!("  per-hop increment: {}", rtts[2] - rtts[1]);

    // ---- scene 3: torus re-route around an interior cut ---------------
    println!("\n== torus: interior link down mid-workload ==");
    let (mut fabric, paths) =
        FabricBuilder::from_topology(DatapathParams::prototype(), &torus, torus.host_at(0, 0))
            .path_to(torus.host_at(2, 2), PathSpec::reference(256 << 20, 2).labelled("cross-rack"))
            .build()?;
    let path = paths[0];
    let route = fabric.topology_route(path).expect("routed path");
    let victim = fabric.topology_link_names()[route.links[1]].clone();
    println!(
        "  h0x0 -> h2x2 over {} hops; cutting interior link '{victim}' at 700 ns",
        route.hops(),
    );
    fabric.schedule_chaos(&ChaosPlan::new().link_down_named(SimTime::from_ns(700), &victim));
    let issued: Vec<u64> = (0..24).map(|_| fabric.issue_read(path).unwrap()).collect();
    let mut completed = 0usize;
    while let Some(done) = fabric.step()? {
        completed += done.len();
    }
    assert_eq!(completed, issued.len(), "the torus detour must strand nothing");
    assert!(fabric.faults().is_empty());
    let detour = fabric.topology_route(path).expect("still routed");
    println!(
        "  {}/{} loads completed, {} re-route(s); detour is {} hops and avoids '{victim}'",
        completed,
        issued.len(),
        fabric.route_reroutes(),
        detour.hops(),
    );

    // ---- scene 4: partitioned along topology-link cuts ----------------
    println!("\n== torus halves: 1-vs-N-worker bit-equality ==");
    let cut: Vec<String> = (0..4)
        .map(|c| format!("h1x{c}-h2x{c}"))
        .chain((0..4).map(|c| format!("h3x{c}-h0x{c}")))
        .collect();
    let cuts: Vec<&str> = cut.iter().map(String::as_str).collect();
    let digests = |workers: usize| -> Result<_, Box<dyn std::error::Error>> {
        let torus = Torus2D::new(4, 4)?;
        let mut pf = PartitionedFabric::from_topology_cut(
            DatapathParams::prototype(),
            &torus,
            &cuts,
            256 << 20,
            WorkloadSpec::quick(),
        )?;
        pf.run(workers)?;
        Ok(pf.digests())
    };
    let one = digests(1)?;
    let four = digests(4)?;
    assert_eq!(one, four, "digests must not depend on the worker count");
    println!(
        "  cut {} links -> {} shards; {} completions, digests identical on 1 and 4 workers",
        cuts.len(),
        one.len(),
        one.iter().map(|d| d.completions).sum::<u64>(),
    );

    println!("\ntopologies: one trait, deterministic routes, survivable cuts");
    Ok(())
}
