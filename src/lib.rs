//! # ThymesisFlow (reproduction)
//!
//! Umbrella crate for the ThymesisFlow reproduction workspace. It re-exports
//! every subsystem crate so that downstream users (and the examples and
//! integration tests in this repository) can depend on a single crate.
//!
//! The original system — presented at MICRO 2020 — is a HW/SW co-designed
//! interconnect for rack-scale memory disaggregation built on POWER9 and
//! OpenCAPI. This repository models the complete stack in software:
//!
//! * [`netsim`] — the physical network substrate (serDES lanes, bonded
//!   channels, direct-attach cables, a circuit switch, error injection).
//! * [`llc`] — the Link-Layer Control protocol (credits, frames, replay).
//! * [`opencapi`] — the OpenCAPI M1/C1 attachment model.
//! * [`rmmu`] — the Remote Memory Management Unit (section-table address
//!   translation and network-id tagging).
//! * [`routing`] — per-flow routing with round-robin channel bonding.
//! * [`hostsim`] — the host substrate (cores, caches, NUMA, memory hotplug).
//! * [`ctrlplane`] — the software-defined control plane (property graph,
//!   path finding, REST-style API, agents).
//! * [`core`](thymesisflow_core) — the assembled ThymesisFlow endpoints,
//!   rack builder, attach/detach lifecycle and the calibrated memory model.
//! * [`workloads`] — STREAM, YCSB/VoltDB, Memcached and Elasticsearch-like
//!   application models used by the paper's evaluation.
//! * [`dcsim`] — the data-centre motivation simulator (paper Fig. 1).
//!
//! ## Quickstart
//!
//! ```
//! use thymesisflow::prelude::*;
//!
//! // Build a two-node rack: one borrower (compute) and one donor.
//! let mut rack = RackBuilder::new()
//!     .node(NodeConfig::ac922("borrower"))
//!     .node(NodeConfig::ac922("donor"))
//!     .cable("borrower", "donor")
//!     .build()
//!     .expect("rack builds");
//!
//! // Attach 64 GiB of the donor's memory to the borrower.
//! let lease = rack
//!     .attach(AttachRequest::new("borrower", "donor", 64 * GIB))
//!     .expect("attach succeeds");
//! assert_eq!(lease.bytes(), 64 * GIB);
//!
//! // The borrower now sees a new CPU-less NUMA node.
//! let host = rack.host("borrower").unwrap();
//! assert!(host.numa().nodes().len() >= 2);
//! # rack.detach(lease.id()).unwrap();
//! ```

pub use ctrlplane;
pub use dcsim;
pub use hostsim;
pub use llc;
pub use netsim;
pub use opencapi;
pub use rmmu;
pub use routing;
pub use simkit;
pub use thymesisflow_core as core;
pub use workloads;

/// Convenience re-exports covering the most common entry points.
pub mod prelude {
    pub use crate::core::attach::{AttachRequest, Lease};
    pub use crate::core::config::SystemConfig;
    pub use crate::core::params::DatapathParams;
    pub use crate::core::rack::{NodeConfig, Rack, RackBuilder};
    pub use crate::workloads::runner::WorkloadRunner;
    pub use simkit::time::SimTime;
    pub use simkit::units::{GIB, KIB, MIB};
}
