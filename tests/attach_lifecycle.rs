//! Cross-crate integration: the full attach → allocate → migrate →
//! detach lifecycle across rack, control plane, agents and host OS,
//! down to the flit-level fabric paths leases instantiate.

use thymesisflow::core::attach::AttachRequest;
use thymesisflow::core::rack::{NodeConfig, Rack, RackBuilder};
use thymesisflow::hostsim::migration::{MigrationDaemon, PagePlacement};
use thymesisflow::hostsim::mmu::PAGE_BYTES;
use thymesisflow::hostsim::numa::{AllocPolicy, NumaNodeId};
use thymesisflow::simkit::time::SimTime;
use thymesisflow::simkit::units::GIB;

fn two_node_rack() -> Rack {
    RackBuilder::new()
        .node(NodeConfig::ac922("borrower"))
        .node(NodeConfig::ac922("donor"))
        .cable("borrower", "donor")
        .build()
        .expect("rack builds")
}

#[test]
fn attach_exposes_cpuless_numa_node_and_allocates() {
    let mut rack = two_node_rack();
    let lease = rack
        .attach(AttachRequest::new("borrower", "donor", 32 * GIB))
        .expect("attach");
    let host = rack.host_mut("borrower").expect("host exists");
    let node = lease.numa_node();
    assert!(host.numa().node(node).expect("numa node").is_cpuless());
    assert_eq!(
        host.numa().node(node).unwrap().total_pages(),
        32 * GIB / PAGE_BYTES
    );
    // Bind an application's working set to the disaggregated node (the
    // single-disaggregated configuration).
    let pages = 4 * GIB / PAGE_BYTES;
    let placed = host
        .numa_mut()
        .allocate(&AllocPolicy::Bind(node), NumaNodeId(0), pages)
        .expect("allocation fits");
    assert_eq!(placed[&node], pages);
    // Cannot detach while pages are live.
    assert!(rack.detach(lease.id()).is_err());
    rack.host_mut("borrower")
        .unwrap()
        .numa_mut()
        .free(node, pages)
        .unwrap();
    rack.detach(lease.id()).expect("detach after freeing");
    assert_eq!(rack.host("borrower").unwrap().remote_bytes(), 0);
}

#[test]
fn interleave_policy_splits_pages_between_local_and_remote() {
    let mut rack = two_node_rack();
    let lease = rack
        .attach(AttachRequest::new("borrower", "donor", 16 * GIB))
        .unwrap();
    let host = rack.host_mut("borrower").unwrap();
    let remote = lease.numa_node();
    let placed = host
        .numa_mut()
        .allocate(
            &AllocPolicy::Interleave(vec![NumaNodeId(0), remote]),
            NumaNodeId(0),
            1000,
        )
        .unwrap();
    assert_eq!(placed[&NumaNodeId(0)], 500);
    assert_eq!(placed[&remote], 500);
}

#[test]
fn page_migration_pulls_hot_pages_off_the_remote_node() {
    let mut rack = two_node_rack();
    let lease = rack
        .attach(AttachRequest::new("borrower", "donor", 16 * GIB))
        .unwrap();
    let remote = lease.numa_node();
    let host = rack.host_mut("borrower").unwrap();
    host.numa_mut()
        .allocate(&AllocPolicy::Bind(remote), NumaNodeId(0), 64)
        .unwrap();
    let mut placement = PagePlacement::new();
    for p in 0..64 {
        placement.place(p, remote);
    }
    let mut daemon = MigrationDaemon::new(NumaNodeId(0), 2);
    for _ in 0..8 {
        daemon.record_access(7);
        daemon.record_access(9);
    }
    let moved = daemon.scan(host.numa_mut(), &mut placement);
    assert_eq!(moved, 2);
    assert_eq!(placement.node_of(7), Some(NumaNodeId(0)));
    assert_eq!(placement.node_of(9), Some(NumaNodeId(0)));
    assert_eq!(placement.pages_on(remote), 62);
}

#[test]
fn many_leases_across_three_nodes_then_full_teardown() {
    let mut rack = RackBuilder::new()
        .node(NodeConfig::ac922("a"))
        .node(NodeConfig::ac922("b"))
        .node(NodeConfig::ac922("c"))
        .cable("a", "b")
        .cable("b", "c")
        .cable("a", "c")
        .build()
        .unwrap();
    let mut leases = Vec::new();
    for (compute, memory) in [("a", "b"), ("b", "c"), ("c", "a"), ("a", "c")] {
        leases.push(
            rack.attach(AttachRequest::new(compute, memory, 8 * GIB))
                .unwrap_or_else(|e| panic!("{compute}<-{memory}: {e}")),
        );
    }
    assert_eq!(rack.leases().count(), 4);
    assert_eq!(rack.host("a").unwrap().remote_bytes(), 16 * GIB);
    for lease in leases {
        rack.detach(lease.id()).unwrap();
    }
    for n in ["a", "b", "c"] {
        assert_eq!(rack.host(n).unwrap().remote_bytes(), 0, "{n}");
        assert_eq!(rack.host(n).unwrap().numa().nodes().len(), 2, "{n}");
    }
}

#[test]
fn multi_donor_leases_run_and_detach_at_flit_level() {
    // One borrower leases from two donors: both leases share the
    // borrower's fabric, stream concurrently at full channel rate, and
    // detaching one must not perturb traffic on the survivor.
    let mut rack = RackBuilder::new()
        .node(NodeConfig::ac922("borrower"))
        .node(NodeConfig::ac922("d1"))
        .node(NodeConfig::ac922("d2"))
        .cable("borrower", "d1")
        .cable("borrower", "d2")
        .build()
        .unwrap();
    let l1 = rack.attach(AttachRequest::new("borrower", "d1", 4 * GIB)).unwrap();
    let l2 = rack.attach(AttachRequest::new("borrower", "d2", 4 * GIB)).unwrap();
    assert_ne!(l1.network_id(), l2.network_id());
    assert!(l1.window_base() + l1.bytes() <= l2.window_base());
    // Uncontended, each lease sees the reference load-to-use RTT.
    assert!((1000..=1200).contains(&rack.measure_lease_rtt(l1.id()).unwrap().as_ns()));
    assert!((1000..=1200).contains(&rack.measure_lease_rtt(l2.id()).unwrap().as_ns()));

    // Both donors stream concurrently over one shared event queue.
    let rates = rack
        .run_lease_streams(
            &[(l1.id(), 8, 32), (l2.id(), 8, 32)],
            SimTime::from_us(100),
        )
        .unwrap();
    for (i, r) in rates.iter().enumerate() {
        let gib = r.as_gib_per_sec();
        assert!((8.5..=11.64).contains(&gib), "lease {i} streamed {gib} GiB/s");
    }

    // Survivor baseline, then detach the other lease mid-life.
    let before = rack
        .measure_lease_bandwidth(l2.id(), 8, 32, SimTime::from_us(100))
        .unwrap()
        .as_gib_per_sec();
    rack.detach(l1.id()).unwrap();
    let after = rack
        .measure_lease_bandwidth(l2.id(), 8, 32, SimTime::from_us(100))
        .unwrap()
        .as_gib_per_sec();
    let drift = (after - before).abs() / before;
    assert!(
        drift < 0.02,
        "survivor perturbed by detach: {before} -> {after} GiB/s"
    );
    rack.detach(l2.id()).unwrap();
    assert_eq!(rack.fabric("borrower").unwrap().path_ids().len(), 0);
}

#[test]
fn bonded_lease_reports_bonding() {
    let mut rack = two_node_rack();
    let lease = rack
        .attach(AttachRequest::new("borrower", "donor", 8 * GIB).bonded())
        .unwrap();
    assert!(lease.is_bonded());
    assert_eq!(lease.bytes(), 8 * GIB);
    assert_eq!(lease.compute(), "borrower");
    assert_eq!(lease.memory(), "donor");
}
