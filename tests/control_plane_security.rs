//! Cross-crate integration: the software-defined control plane's REST
//! interface, access control and the trusted-agent property.

use thymesisflow::ctrlplane::agent::{AgentError, NodeAgent};
use thymesisflow::ctrlplane::api::{AttachSpec, Request, Response};
use thymesisflow::ctrlplane::auth::Role;
use thymesisflow::ctrlplane::service::ControlPlane;
use thymesisflow::hostsim::node::{HostNode, NodeSpec};
use thymesisflow::simkit::units::GIB;

fn plane() -> ControlPlane {
    let mut cp = ControlPlane::new("integration-secret");
    cp.register_host("c1", 2, 512 * GIB);
    cp.register_host("m1", 2, 512 * GIB);
    cp.add_cable("c1", 0, "m1", 0, 100.0);
    cp.add_cable("c1", 1, "m1", 1, 100.0);
    cp
}

#[test]
fn rest_json_attach_status_detach() {
    let mut cp = plane();
    let admin = cp.auth_mut().issue_token(Role::Admin);
    let attach = serde_json::to_string(&Request::Attach {
        token: admin.clone(),
        spec: AttachSpec {
            compute_host: "c1".into(),
            memory_host: "m1".into(),
            bytes: 2 * GIB,
            bonded: true,
        },
    })
    .unwrap();
    let resp: Response = serde_json::from_str(&cp.handle_json(&attach)).unwrap();
    let flow = match resp {
        Response::Attached { flow, bytes, channels } => {
            assert_eq!(bytes, 2 * GIB);
            assert_eq!(channels, 2);
            flow
        }
        other => panic!("unexpected: {other:?}"),
    };
    let status = serde_json::to_string(&Request::Status { token: admin.clone() }).unwrap();
    let resp: Response = serde_json::from_str(&cp.handle_json(&status)).unwrap();
    assert_eq!(resp, Response::Status { flows: 1, hosts: 2 });
    let detach = serde_json::to_string(&Request::Detach { token: admin, flow }).unwrap();
    let resp: Response = serde_json::from_str(&cp.handle_json(&detach)).unwrap();
    assert_eq!(resp, Response::Detached { flow });
}

#[test]
fn unauthorized_and_forbidden_flows_are_rejected() {
    let mut cp = plane();
    let observer = cp.auth_mut().issue_token(Role::Observer);
    let spec = AttachSpec {
        compute_host: "c1".into(),
        memory_host: "m1".into(),
        bytes: 1 * GIB,
        bonded: false,
    };
    // Observer may read status but never attach.
    let resp = cp.handle(Request::Attach {
        token: observer.clone(),
        spec: spec.clone(),
    });
    assert!(matches!(resp, Response::Error { ref code, .. } if code == "forbidden"));
    // A made-up token is unauthorized.
    let resp = cp.handle(Request::Attach {
        token: thymesisflow::ctrlplane::auth::Token("forged".into()),
        spec,
    });
    assert!(matches!(resp, Response::Error { ref code, .. } if code == "unauthorized"));
    // Denials are visible in the audit state.
    assert!(cp.auth_mut().denials() >= 2);
}

#[test]
fn agents_refuse_configs_not_signed_by_the_control_plane() {
    let mut cp = plane();
    let admin = cp.auth_mut().issue_token(Role::Admin);
    let grant = cp
        .attach(
            &admin,
            AttachSpec {
                compute_host: "c1".into(),
                memory_host: "m1".into(),
                bytes: 1 * GIB,
                bonded: false,
            },
        )
        .unwrap();
    // The genuine config is accepted by an agent sharing the secret…
    let mut good_agent = NodeAgent::new(HostNode::new(NodeSpec::ac922("c1")), "integration-secret");
    good_agent.apply_compute(&grant.compute_config).unwrap();
    // …but an agent provisioned with a different trust anchor refuses,
    let mut foreign = NodeAgent::new(HostNode::new(NodeSpec::ac922("cx")), "other-secret");
    assert_eq!(
        foreign.apply_compute(&grant.compute_config),
        Err(AgentError::UntrustedConfig)
    );
    // …and a *tampered* config is refused even with the right secret
    // ("no malicious software can push illegal configurations").
    let mut tampered = grant.compute_config.clone();
    tampered.window_bytes *= 2;
    let mut agent = NodeAgent::new(HostNode::new(NodeSpec::ac922("c1")), "integration-secret");
    assert_eq!(
        agent.apply_compute(&tampered),
        Err(AgentError::UntrustedConfig)
    );
    let mut tampered_mem = grant.memory_config;
    tampered_mem.ea_base += 4096;
    assert_eq!(
        agent.apply_memory(&tampered_mem),
        Err(AgentError::UntrustedConfig)
    );
}

#[test]
fn audit_trail_covers_the_whole_lifecycle() {
    let mut cp = plane();
    let admin = cp.auth_mut().issue_token(Role::Admin);
    let grant = cp
        .attach(
            &admin,
            AttachSpec {
                compute_host: "c1".into(),
                memory_host: "m1".into(),
                bytes: 1 * GIB,
                bonded: false,
            },
        )
        .unwrap();
    cp.detach(&admin, grant.flow).unwrap();
    let events: Vec<&str> = cp.audit().iter().map(|e| e.event.as_str()).collect();
    assert!(events.iter().any(|e| e.starts_with("register_host c1")));
    assert!(events.iter().any(|e| e.starts_with("add_cable")));
    assert!(events.iter().any(|e| e.contains("attach")));
    assert!(events.iter().any(|e| e.contains("detach")));
    // Sequence numbers are dense and ordered.
    for (i, e) in cp.audit().iter().enumerate() {
        assert_eq!(e.seq, i as u64);
    }
}

#[test]
fn donor_capacity_is_a_hard_limit_through_the_api() {
    let mut cp = plane();
    let admin = cp.auth_mut().issue_token(Role::Admin);
    let spec = |bytes| AttachSpec {
        compute_host: "c1".into(),
        memory_host: "m1".into(),
        bytes,
        bonded: false,
    };
    cp.attach(&admin, spec(512 * GIB)).unwrap();
    let resp = cp.handle(Request::Attach {
        token: admin,
        spec: spec(1 * GIB),
    });
    assert!(matches!(resp, Response::Error { ref code, .. } if code == "donor_exhausted"));
}
