//! Cross-crate integration: the flit-level datapath against the
//! analytic calibration, and the endpoint pipeline's legality checks.

use thymesisflow::core::datapath::Datapath;
use thymesisflow::core::endpoint::{ComputeEndpoint, EndpointError, MemoryStealingEndpoint};
use thymesisflow::core::fabric::FabricBuilder;
use thymesisflow::core::params::DatapathParams;
use thymesisflow::opencapi::pasid::{Pasid, Region};
use thymesisflow::opencapi::transaction::MemRequest;
use thymesisflow::rmmu::flow::NetworkId;
use thymesisflow::rmmu::section::SectionEntry;
use thymesisflow::routing::ChannelId;
use thymesisflow::simkit::time::SimTime;

const WINDOW: u64 = 0x1000_0000_0000;
const DONOR: u64 = 0x7000_0000_0000;
const SECTION: u64 = 256 << 20;

#[test]
fn measured_rtt_tracks_the_analytic_budget_across_calibrations() {
    for params in [DatapathParams::prototype(), DatapathParams::asic_integrated()] {
        let analytic = params.remote_load_latency();
        let mut dp = Datapath::new(params, 1, SECTION);
        let measured = dp.measure_load_latency();
        let delta = measured.as_ns() as i64 - analytic.as_ns() as i64;
        assert!(
            delta.abs() < 150,
            "measured {measured} vs analytic {analytic}"
        );
    }
}

#[test]
fn asic_integration_cuts_latency_roughly_in_half() {
    let mut proto = Datapath::new(DatapathParams::prototype(), 1, SECTION);
    let mut asic = Datapath::new(DatapathParams::asic_integrated(), 1, SECTION);
    let p = proto.measure_load_latency();
    let a = asic.measure_load_latency();
    assert!(
        a.as_ns() * 2 < p.as_ns() + 300,
        "asic {a} vs prototype {p}"
    );
}

#[test]
fn saturation_ordering_single_vs_bonded() {
    let mut single = Datapath::new(DatapathParams::prototype(), 1, SECTION);
    let mut bonded = Datapath::new(DatapathParams::prototype(), 2, SECTION);
    let s = single
        .measure_stream_bandwidth(8, 32, SimTime::from_us(100))
        .as_gib_per_sec();
    let b = bonded
        .measure_stream_bandwidth(8, 32, SimTime::from_us(100))
        .as_gib_per_sec();
    assert!(b > s, "bonded {b} vs single {s}");
    assert!(b < 17.0, "C1 ceiling respected: {b}");
}

#[test]
fn full_pipeline_enforces_legality_end_to_end() {
    // The §IV-C security property: "compute endpoint configurations
    // allow memory transactions forwarding only towards legal
    // destinations, and fail otherwise" — at every stage.
    let mut compute = ComputeEndpoint::new(WINDOW, 2 * SECTION);
    compute
        .program_section(
            0,
            SectionEntry::new(DONOR, NetworkId(1)),
            vec![ChannelId(0)],
        )
        .unwrap();
    // Section 1 deliberately left unprogrammed.
    let mut memory = MemoryStealingEndpoint::new(SimTime::from_ns(105));
    memory
        .register(
            Pasid(1),
            Region {
                ea_base: DONOR,
                len: SECTION,
            },
        )
        .unwrap();

    // Legal: programmed section, registered donor region.
    let (routed, ch) = compute
        .process(&MemRequest::read(0, WINDOW + 0x80))
        .expect("legal transaction");
    assert_eq!(ch, ChannelId(0));
    assert!(memory.serve(SimTime::ZERO, &routed, Pasid(1)).is_ok());

    // Illegal at the RMMU: unprogrammed section.
    assert!(matches!(
        compute.process(&MemRequest::read(0, WINDOW + SECTION + 0x80)),
        Err(EndpointError::Rmmu(_))
    ));

    // Illegal at the M1 window: outside the firmware-assigned range.
    assert!(matches!(
        compute.process(&MemRequest::read(0, 0x80)),
        Err(EndpointError::M1(_))
    ));

    // Illegal at the donor: wrong PASID.
    assert!(memory.serve(SimTime::ZERO, &routed, Pasid(9)).is_err());
}

#[test]
fn facade_and_raw_fabric_share_one_trajectory() {
    // The Datapath facade and a hand-built point-to-point fabric must
    // be the same simulation: identical event counts and bit-identical
    // measured rates, for single and bonded channels.
    for channels in [1usize, 2] {
        let mut dp = Datapath::new(DatapathParams::prototype(), channels, SECTION);
        let (mut fabric, path) =
            FabricBuilder::point_to_point(DatapathParams::prototype(), channels, SECTION)
                .unwrap();
        let a = dp.measure_stream_bandwidth(8, 32, SimTime::from_us(100));
        let b = fabric
            .measure_stream_bandwidth(path, 8, 32, SimTime::from_us(100))
            .unwrap();
        assert_eq!(
            a.as_gib_per_sec().to_bits(),
            b.as_gib_per_sec().to_bits(),
            "{channels}ch rates diverged: {} vs {} GiB/s",
            a.as_gib_per_sec(),
            b.as_gib_per_sec()
        );
        assert_eq!(
            dp.events_processed(),
            fabric.events_processed(),
            "{channels}ch event trajectories diverged"
        );
        let ha = dp.completions();
        let hb = fabric.completions(path).unwrap();
        assert_eq!(ha.count(), hb.count());
        assert_eq!(ha.quantile(0.5), hb.quantile(0.5));
        assert_eq!(ha.max(), hb.max());
    }
}

#[test]
fn datapath_latency_histogram_is_tight_when_uncontended() {
    let mut dp = Datapath::new(DatapathParams::prototype(), 1, SECTION);
    let _ = dp.measure_stream_bandwidth(1, 1, SimTime::from_us(100));
    let h = dp.completions();
    assert!(h.count() > 10);
    let spread = h.quantile(0.99) as f64 / h.quantile(0.5) as f64;
    assert!(spread < 1.3, "uncontended spread {spread}");
}
