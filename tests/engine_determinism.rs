//! Determinism under parallelism: the same master seed must produce
//! bit-identical results whether a sweep runs on one worker or many,
//! and whether the event queue runs on the hybrid fast path or the
//! reference heap engine. These are the invariants that make the
//! performance layer free: speed without a single changed trajectory.

use thymesisflow::core::datapath::Datapath;
use thymesisflow::core::params::DatapathParams;
use thymesisflow::simkit::event::Engine;
use thymesisflow::simkit::rng::DetRng;
use thymesisflow::simkit::stats::Histogram;
use thymesisflow::simkit::sweep::sweep_with_workers;
use thymesisflow::simkit::time::SimTime;

const SECTION: u64 = 256 << 20;
const MASTER_SEED: u64 = 0x7F10_2020;

/// One sweep point: a short closed-loop bandwidth run plus an
/// RNG-driven histogram, everything reduced to exact bit patterns
/// (quantiles as integers, rates via `f64::to_bits`) so equality is
/// bit-for-bit, not approximate.
fn run_point(point: (usize, u32), mut rng: DetRng) -> (Vec<u64>, u64, u64, u64) {
    let (channels, threads) = point;
    let mut dp = Datapath::new(DatapathParams::prototype(), channels, SECTION);
    let rate = dp.measure_stream_bandwidth(threads, 8, SimTime::from_us(30));
    let mut h = Histogram::new();
    for _ in 0..2_000 {
        h.record(rng.range(1, 1_000_000));
    }
    let quantiles: Vec<u64> = (0..=10).map(|i| h.quantile(f64::from(i) / 10.0)).collect();
    (
        quantiles,
        rate.as_gib_per_sec().to_bits(),
        dp.completions().quantile(0.5),
        dp.events_processed(),
    )
}

fn grid() -> Vec<(usize, u32)> {
    vec![(1, 1), (1, 4), (1, 8), (2, 4), (2, 8)]
}

#[test]
fn sweep_results_are_bit_identical_for_1_vs_n_workers() {
    let serial = sweep_with_workers(MASTER_SEED, grid(), 1, |_i, p, rng| run_point(p, rng));
    for workers in [2, 4, 8] {
        let parallel =
            sweep_with_workers(MASTER_SEED, grid(), workers, |_i, p, rng| run_point(p, rng));
        assert_eq!(
            serial, parallel,
            "sweep output changed with {workers} workers"
        );
    }
}

#[test]
fn sweep_results_depend_on_the_master_seed() {
    // Sanity for the test above: the RNG streams actually reach the
    // results, so bit-equality is not vacuous.
    let a = sweep_with_workers(MASTER_SEED, grid(), 2, |_i, p, rng| run_point(p, rng));
    let b = sweep_with_workers(MASTER_SEED + 1, grid(), 2, |_i, p, rng| run_point(p, rng));
    assert_ne!(a, b, "master seed had no effect");
}

#[test]
fn hybrid_and_heap_engines_trace_identical_simulations() {
    // The engine property tests prove pop-order equality on arbitrary
    // schedules; this proves it end to end — the full datapath produces
    // bit-identical measurements on both engines.
    for (channels, threads) in [(1, 4), (2, 8)] {
        let mut results = Vec::new();
        for engine in [Engine::Hybrid, Engine::HeapOnly] {
            let mut dp = Datapath::with_engine(
                DatapathParams::prototype(),
                channels,
                SECTION,
                engine,
            );
            let rate = dp.measure_stream_bandwidth(threads, 8, SimTime::from_us(40));
            let quantiles: Vec<u64> = (0..=20)
                .map(|i| dp.completions().quantile(f64::from(i) / 20.0))
                .collect();
            results.push((
                rate.as_gib_per_sec().to_bits(),
                quantiles,
                dp.events_processed(),
            ));
        }
        assert_eq!(
            results[0], results[1],
            "engines diverged at {channels} channels / {threads} threads"
        );
    }
}
