//! Cross-crate integration: the evaluation's headline *shapes* — who
//! wins, roughly by how much, and where the crossovers fall — asserted
//! end-to-end through the public API.

use thymesisflow::core::config::SystemConfig;
use thymesisflow::workloads::memcached::MemcachedBench;
use thymesisflow::workloads::runner::WorkloadRunner;
use thymesisflow::workloads::search::{Challenge, Elasticsearch};
use thymesisflow::workloads::stream::StreamBench;
use thymesisflow::workloads::voltdb::VoltDb;
use thymesisflow::workloads::ycsb::YcsbWorkload;

#[test]
fn fig5_interleaved_beats_bonding_beats_single() {
    let runner = WorkloadRunner::new();
    for threads in [4, 8, 16] {
        let copy = |c: SystemConfig| {
            StreamBench::paper(threads).run(&runner.model(c))[0].gib_per_sec
        };
        let single = copy(SystemConfig::SingleDisaggregated);
        let bonding = copy(SystemConfig::BondingDisaggregated);
        let interleaved = copy(SystemConfig::Interleaved);
        assert!(bonding >= single, "{threads}T");
        assert!(interleaved > bonding, "{threads}T");
        assert!(single <= runner.params().channel_nominal_gib(), "{threads}T");
    }
}

#[test]
fn fig5_bonding_gain_is_tens_of_percent_not_2x() {
    let runner = WorkloadRunner::new();
    let single = StreamBench::paper(8)
        .run(&runner.model(SystemConfig::SingleDisaggregated))[0]
        .gib_per_sec;
    let bonding = StreamBench::paper(8)
        .run(&runner.model(SystemConfig::BondingDisaggregated))[0]
        .gib_per_sec;
    let gain = bonding / single;
    assert!(
        (1.15..=1.6).contains(&gain),
        "bonding gain {gain} (paper: ~1.3, capped by 128 B C1 transactions)"
    );
}

#[test]
fn fig7_local_wins_and_gaps_shrink_with_partitions() {
    let runner = WorkloadRunner::new();
    let gap = |parts: u32| {
        let local = VoltDb::new(runner.model(SystemConfig::Local), parts)
            .throughput_ops(YcsbWorkload::A);
        let single = VoltDb::new(runner.model(SystemConfig::SingleDisaggregated), parts)
            .throughput_ops(YcsbWorkload::A);
        1.0 - single / local
    };
    let at4 = gap(4);
    let at32 = gap(32);
    assert!(at4 > at32, "gap must shrink with partitions: {at4} vs {at32}");
    assert!(at32 < 0.15, "at 32 partitions the gap is single-digit-ish: {at32}");
}

#[test]
fn fig8_thymesisflow_stays_within_ten_percent_of_local() {
    // "Configurations that utilize our ThymesisFlow prototype offer
    // similar performance to local with an average increase in latency
    // of up-to 7%."
    let runner = WorkloadRunner::new();
    let bench = MemcachedBench {
        clients: 32,
        workers: 8,
        requests_per_client: 600,
    };
    let mean = |c| bench.run(runner.model(c), 5).0.mean_us();
    let local = mean(SystemConfig::Local);
    for c in SystemConfig::THYMESISFLOW {
        let m = mean(c);
        assert!(m / local < 1.10, "{c}: {m} vs local {local}");
        assert!(m > local, "{c} cannot beat local");
    }
}

#[test]
fn fig9_crossover_rtq_vs_ma() {
    // The same hardware helps or hurts by workload: RTQ collapses under
    // disaggregation while MA barely notices — the paper's core
    // "depends on the workload" conclusion.
    let runner = WorkloadRunner::new();
    let ratio = |ch| {
        let local = Elasticsearch::new(runner.model(SystemConfig::Local), 32).throughput_ops(ch);
        let single =
            Elasticsearch::new(runner.model(SystemConfig::SingleDisaggregated), 32)
                .throughput_ops(ch);
        single / local
    };
    assert!(ratio(Challenge::Rtq) < 0.5, "RTQ collapses");
    assert!(ratio(Challenge::Ma) > 0.8, "MA barely notices");
}

#[test]
fn latency_hierarchy_is_consistent_everywhere() {
    // local < interleaved < single across every model surface.
    let runner = WorkloadRunner::new();
    let lat = |c: SystemConfig| runner.model(c).avg_load_latency_ns();
    assert!(lat(SystemConfig::Local) < lat(SystemConfig::Interleaved));
    assert!(lat(SystemConfig::Interleaved) < lat(SystemConfig::SingleDisaggregated));
    // And the remote/local ratio is the paper's ~10x.
    let ratio = lat(SystemConfig::SingleDisaggregated) / lat(SystemConfig::Local);
    assert!((8.0..=12.0).contains(&ratio), "latency ratio {ratio}");
}
