//! Cross-crate integration: fabric topologies beyond the reference
//! point-to-point shape — one-compute × N-donor fan-out and the
//! circuit-switched rack — plus the facade/fabric trajectory-equality
//! guarantee the refactor rests on.

use thymesisflow::core::fabric::{FabricBuilder, StreamLoad};
use thymesisflow::core::params::DatapathParams;
use thymesisflow::netsim::switch::CircuitSwitch;
use thymesisflow::simkit::time::SimTime;

const SECTION: u64 = 256 << 20;

fn params() -> DatapathParams {
    DatapathParams::prototype()
}

#[test]
fn fan_out_streams_every_donor_at_full_channel_rate() {
    // Three donors on three independent channels behind one compute
    // side: each sustains the single-channel ~10 GiB/s concurrently.
    let (mut fabric, paths) = FabricBuilder::fan_out(params(), 3, SECTION).unwrap();
    let loads: Vec<StreamLoad> = paths
        .iter()
        .map(|&path| StreamLoad {
            path,
            threads: 8,
            window: 32,
        })
        .collect();
    let rates = fabric
        .run_closed_loop(&loads, SimTime::from_us(100))
        .unwrap();
    assert_eq!(rates.len(), 3);
    for (i, r) in rates.iter().enumerate() {
        let gib = r.as_gib_per_sec();
        assert!(
            (8.5..=11.64).contains(&gib),
            "donor {i} streamed {gib} GiB/s"
        );
    }
}

#[test]
fn detaching_one_donor_does_not_perturb_the_survivor() {
    // Two fabrics, identical seeds. In one, donor 0 stays attached (but
    // idle); in the other it is detached before measuring. The
    // survivor's trajectory must be bit-for-bit identical: tombstoned
    // link slots keep channel indices and seeds stable.
    let (mut idle, paths_a) = FabricBuilder::fan_out(params(), 2, SECTION).unwrap();
    let (mut torn, paths_b) = FabricBuilder::fan_out(params(), 2, SECTION).unwrap();
    torn.detach_path(paths_b[0]).unwrap();

    let a = idle
        .measure_stream_bandwidth(paths_a[1], 8, 32, SimTime::from_us(100))
        .unwrap();
    let b = torn
        .measure_stream_bandwidth(paths_b[1], 8, 32, SimTime::from_us(100))
        .unwrap();
    assert_eq!(
        a.as_gib_per_sec().to_bits(),
        b.as_gib_per_sec().to_bits(),
        "survivor rate drifted: {} vs {} GiB/s",
        a.as_gib_per_sec(),
        b.as_gib_per_sec()
    );
    let ha = idle.completions(paths_a[1]).unwrap();
    let hb = torn.completions(paths_b[1]).unwrap();
    assert_eq!(ha.count(), hb.count());
    assert_eq!(ha.max(), hb.max());
}

#[test]
fn circuit_switch_costs_one_traversal_each_way() {
    let p2p_rtt = {
        let (mut fabric, path) = FabricBuilder::point_to_point(params(), 1, SECTION).unwrap();
        fabric.measure_load_latency(path).unwrap()
    };
    let (mut rack, paths) =
        FabricBuilder::circuit_rack(params(), 1, SECTION, CircuitSwitch::optical(8)).unwrap();
    // The first load waits out the 25 us circuit programming.
    let first = rack.measure_load_latency(paths[0]).unwrap();
    assert!(first >= SimTime::from_us(25), "first load {first}");
    // Steady state: the established circuit adds exactly one switch
    // traversal (30 ns) per direction on top of the direct-attach RTT.
    let steady = rack.measure_load_latency(paths[0]).unwrap();
    let extra = steady.as_ns() as i64 - p2p_rtt.as_ns() as i64;
    assert_eq!(extra, 60, "switched {steady} vs direct {p2p_rtt}");
}

#[test]
fn circuit_rack_frees_ports_on_detach() {
    let (mut rack, paths) =
        FabricBuilder::circuit_rack(params(), 2, SECTION, CircuitSwitch::optical(8)).unwrap();
    {
        let sw = rack.switch_stage().unwrap().switch();
        assert_eq!(sw.circuit_count(), 2);
        assert_eq!(sw.free_ports().len(), 4);
    }
    rack.detach_path(paths[0]).unwrap();
    let sw = rack.switch_stage().unwrap().switch();
    assert_eq!(sw.circuit_count(), 1);
    assert_eq!(sw.free_ports().len(), 6);
    // The survivor keeps streaming at the full channel rate once its
    // circuit programming (25 us) has elapsed.
    let _ = rack.measure_load_latency(paths[1]).unwrap();
    let rate = rack
        .measure_stream_bandwidth(paths[1], 8, 32, SimTime::from_us(100))
        .unwrap();
    let gib = rate.as_gib_per_sec();
    assert!((8.5..=11.64).contains(&gib), "survivor {gib} GiB/s");
}
