//! Property tests across the whole stack: arbitrary attach/detach
//! sequences never leak or double-book resources.

use proptest::prelude::*;
use thymesisflow::core::attach::AttachRequest;
use thymesisflow::core::rack::{NodeConfig, Rack, RackBuilder};
use thymesisflow::simkit::units::GIB;

fn rack() -> Rack {
    RackBuilder::new()
        .node(NodeConfig::ac922("a"))
        .node(NodeConfig::ac922("b"))
        .cable("a", "b")
        .build()
        .expect("rack builds")
}

#[derive(Debug, Clone)]
enum Action {
    Attach { sections: u64, bonded: bool, flip: bool },
    DetachOldest,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u64..16, any::<bool>(), any::<bool>()).prop_map(|(sections, bonded, flip)| {
            Action::Attach {
                sections,
                bonded,
                flip,
            }
        }),
        Just(Action::DetachOldest),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn attach_detach_sequences_conserve_resources(
        actions in prop::collection::vec(action_strategy(), 1..24)
    ) {
        let mut rack = rack();
        let mut live: Vec<(thymesisflow::core::attach::LeaseId, u64, String)> = Vec::new();
        for action in actions {
            match action {
                Action::Attach { sections, bonded, flip } => {
                    let bytes = sections * (256 << 20);
                    let (c, m) = if flip { ("b", "a") } else { ("a", "b") };
                    let mut req = AttachRequest::new(c, m, bytes);
                    if bonded {
                        req = req.bonded();
                    }
                    match rack.attach(req) {
                        Ok(lease) => live.push((lease.id(), bytes, c.to_string())),
                        Err(_) => {} // capacity/path exhaustion is legal
                    }
                }
                Action::DetachOldest => {
                    if !live.is_empty() {
                        let (id, _, _) = live.remove(0);
                        rack.detach(id).expect("live lease detaches");
                    }
                }
            }
            // Invariant: each host's remote bytes equal the sum of its
            // live leases.
            for host in ["a", "b"] {
                let expect: u64 = live
                    .iter()
                    .filter(|(_, _, c)| c == host)
                    .map(|(_, b, _)| *b)
                    .sum();
                prop_assert_eq!(
                    rack.host(host).expect("host").remote_bytes(),
                    expect,
                    "host {} leaks",
                    host
                );
            }
        }
        // Full teardown always succeeds and restores the pristine state.
        for (id, _, _) in live {
            rack.detach(id).expect("teardown");
        }
        for host in ["a", "b"] {
            let h = rack.host(host).expect("host");
            prop_assert_eq!(h.remote_bytes(), 0);
            prop_assert_eq!(h.numa().nodes().len(), 2);
            prop_assert_eq!(h.local_bytes(), 512 * GIB);
        }
        prop_assert_eq!(rack.leases().count(), 0);
    }
}
