//! Observability must be a pure observer: enabling the metrics
//! registry, the flit tracer, the causal journal, or polling the
//! congestion heatmap may not change a single event the simulator
//! processes. These tests run the same load sequence with observation
//! on and off and compare the completion trajectories bit for bit —
//! on point-to-point and circuit-rack shapes, over a multi-hop torus
//! under chaos, and across partitioned 1-vs-4-worker runs.

use thymesisflow::core::fabric::{
    ChaosPlan, Fabric, FabricBuilder, PartitionedFabric, PathId, PathSpec, WorkloadSpec,
};
use thymesisflow::core::params::DatapathParams;
use thymesisflow::netsim::switch::CircuitSwitch;
use thymesisflow::routing::plan::FlowPlan;
use thymesisflow::routing::topology::Torus2D;
use thymesisflow::simkit::time::SimTime;

const SECTION: u64 = 256 << 20;

/// Everything observable about one run: every completion in retire
/// order as `(tag, path, latency_ps)`, the total events processed and
/// the final simulated instant in picoseconds.
#[derive(Debug, PartialEq, Eq)]
struct Trajectory {
    completions: Vec<(u64, u32, u64)>,
    events: u64,
    now_ps: u64,
}

/// Issue `per_path` reads on every path in bursts of four, stepping the
/// fabric between bursts, then drain. Snapshots are taken mid-run when
/// telemetry is enabled to prove that observing does not perturb.
fn run(mut fabric: Fabric, paths: &[PathId], per_path: usize, telemetry: bool) -> Trajectory {
    fabric.set_telemetry(telemetry);
    let mut completions = Vec::new();
    let mut issued = 0usize;
    while issued < per_path {
        let burst = (per_path - issued).min(4);
        for _ in 0..burst {
            for &p in paths {
                fabric.issue_read(p).expect("issue");
            }
        }
        issued += burst;
        // Interleave a little stepping with issuing so the queues are
        // exercised in a non-trivial order.
        for _ in 0..3 {
            match fabric.step().expect("step") {
                Some(done) => {
                    completions
                        .extend(done.iter().map(|c| (c.tag, c.path.0, c.latency.as_ps())));
                }
                None => break,
            }
        }
        if telemetry {
            // A mid-run snapshot must be side-effect free.
            let snap = fabric.telemetry_snapshot();
            assert!(snap.counter("fabric.loads.issued").unwrap_or(0) >= 1);
        }
    }
    while let Some(done) = fabric.step().expect("step") {
        completions.extend(done.iter().map(|c| (c.tag, c.path.0, c.latency.as_ps())));
    }
    Trajectory {
        completions,
        events: fabric.events_processed(),
        now_ps: fabric.now().as_ps(),
    }
}

#[test]
fn point_to_point_is_bit_identical_with_telemetry() {
    let build = || {
        let (fabric, id) =
            FabricBuilder::point_to_point(DatapathParams::prototype(), 2, SECTION).unwrap();
        (fabric, vec![id])
    };
    let (fabric, paths) = build();
    let off = run(fabric, &paths, 24, false);
    let (fabric, paths) = build();
    let on = run(fabric, &paths, 24, true);
    assert_eq!(off, on, "telemetry perturbed the point-to-point trajectory");
    assert_eq!(off.completions.len(), 24);
}

#[test]
fn circuit_rack_is_bit_identical_with_telemetry() {
    let build = || {
        FabricBuilder::circuit_rack(
            DatapathParams::prototype(),
            3,
            SECTION,
            CircuitSwitch::optical(8),
        )
        .unwrap()
    };
    let (fabric, paths) = build();
    let off = run(fabric, &paths, 12, false);
    let (fabric, paths) = build();
    let on = run(fabric, &paths, 12, true);
    assert_eq!(off, on, "telemetry perturbed the circuit-rack trajectory");
    assert_eq!(off.completions.len(), 12 * 3);
}

/// Like [`run`], but with the whole observability plane on: registry,
/// tracer, causal journal, and mid-run congestion-report polling.
fn run_observed(mut fabric: Fabric, paths: &[PathId], per_path: usize) -> Trajectory {
    fabric.set_telemetry(true);
    fabric.set_journal(true);
    let mut completions = Vec::new();
    let mut issued = 0usize;
    while issued < per_path {
        let burst = (per_path - issued).min(4);
        for _ in 0..burst {
            for &p in paths {
                fabric.issue_read(p).expect("issue");
            }
        }
        issued += burst;
        for _ in 0..3 {
            match fabric.step().expect("step") {
                Some(done) => {
                    completions
                        .extend(done.iter().map(|c| (c.tag, c.path.0, c.latency.as_ps())));
                }
                None => break,
            }
        }
        // Observation mid-flight: a snapshot and a heatmap per burst.
        let snap = fabric.telemetry_snapshot();
        assert!(snap.counter("fabric.loads.issued").unwrap_or(0) >= 1);
        let _ = fabric.congestion_report();
    }
    while let Some(done) = fabric.step().expect("step") {
        completions.extend(done.iter().map(|c| (c.tag, c.path.0, c.latency.as_ps())));
    }
    Trajectory {
        completions,
        events: fabric.events_processed(),
        now_ps: fabric.now().as_ps(),
    }
}

#[test]
fn torus_multihop_is_bit_identical_with_full_observability() {
    // Two multi-hop routes across a 4x4 torus, with a chaos cut that
    // forces a mid-run re-route (journal traffic on the observed run).
    let build = || {
        let torus = Torus2D::new(4, 4).unwrap();
        let spec = |d: usize| {
            let plan = FlowPlan::donor(d);
            PathSpec::new(plan.network, plan.pasid, plan.donor_ea, SECTION)
        };
        let (mut fabric, paths) = FabricBuilder::from_topology(
            DatapathParams::prototype(),
            &torus,
            torus.host_at(0, 0),
        )
        .path_to(torus.host_at(2, 2), spec(0))
        .path_to(torus.host_at(0, 2), spec(1))
        .build()
        .unwrap();
        let victim = fabric.topology_route(paths[0]).unwrap().links[1];
        let name = fabric.topology_link_names()[victim].clone();
        fabric.schedule_chaos(&ChaosPlan::new().link_down_named(SimTime::from_ns(900), &name));
        (fabric, paths)
    };
    let (fabric, paths) = build();
    assert!(fabric.journal().is_none(), "journal must be off by default");
    let off = run(fabric, &paths, 20, false);
    let (fabric, paths) = build();
    let on = run_observed(fabric, &paths, 20);
    assert_eq!(off, on, "observability perturbed the torus trajectory");
    assert_eq!(off.completions.len(), 20 * 2, "the detour must strand nothing");
}

#[test]
fn observed_torus_run_journals_the_reroute() {
    // Guard against the torus test passing vacuously: the observed run
    // must have journaled the chaos cut and the resulting re-route.
    let torus = Torus2D::new(4, 4).unwrap();
    let (mut fabric, paths) = FabricBuilder::from_topology(
        DatapathParams::prototype(),
        &torus,
        torus.host_at(0, 0),
    )
    .path_to(torus.host_at(2, 2), PathSpec::reference(SECTION, 2))
    .build()
    .unwrap();
    fabric.set_journal(true);
    let victim = fabric.topology_route(paths[0]).unwrap().links[1];
    let name = fabric.topology_link_names()[victim].clone();
    fabric.schedule_chaos(&ChaosPlan::new().link_down_named(SimTime::from_ns(900), &name));
    for _ in 0..20 {
        fabric.issue_read(paths[0]).unwrap();
    }
    fabric.drain().unwrap();
    let journal = fabric.journal().expect("journal enabled");
    use thymesisflow::core::fabric::JournalKind;
    assert!(journal.of_kind(JournalKind::Chaos).next().is_some());
    let reroute = journal
        .of_kind(JournalKind::Reroute)
        .next()
        .expect("the cut re-routed");
    assert!(
        !reroute.links.is_empty() && !reroute.links.contains(&name),
        "the journaled detour must avoid the cut link {name}: {:?}",
        reroute.links,
    );
}

#[test]
fn partitioned_torus_is_bit_identical_with_observability_and_workers() {
    // The same torus workload, partitioned along its row seams, run
    // with 1 and 4 workers, observed and unobserved: all four runs
    // must produce identical shard digests and event counts.
    let cut: Vec<String> = (0..4)
        .map(|c| format!("h1x{c}-h2x{c}"))
        .chain((0..4).map(|c| format!("h3x{c}-h0x{c}")))
        .collect();
    let run = |workers: usize, observed: bool| {
        let torus = Torus2D::new(4, 4).unwrap();
        let cuts: Vec<&str> = cut.iter().map(String::as_str).collect();
        let mut pf = PartitionedFabric::from_topology_cut(
            DatapathParams::prototype(),
            &torus,
            &cuts,
            SECTION,
            WorkloadSpec::quick(),
        )
        .unwrap();
        if observed {
            pf.set_telemetry(true);
            for shard in 0.. {
                match pf.shard_mut(shard) {
                    Some(s) => s.fabric_mut().set_journal(true),
                    None => break,
                }
            }
        }
        pf.run(workers).unwrap();
        if observed {
            // Post-run observation: snapshots, heatmaps and journals
            // exist on every shard (and reading them costs nothing).
            for shard in 0..pf.shard_count() {
                assert!(pf.shard_snapshot(shard).is_some());
                let s = pf.shard_mut(shard).unwrap();
                let _ = s.fabric().congestion_report();
                assert!(s.fabric().journal().is_some());
            }
        }
        // The digest's telemetry_json field legitimately differs when
        // observation is on; the *trajectory* fields must not.
        let trajectory: Vec<_> = pf
            .digests()
            .into_iter()
            .map(|d| {
                (d.shard, d.completions, d.completion_fold, d.events_processed,
                 d.injects_refused, d.faults)
            })
            .collect();
        (trajectory, pf.total_events())
    };
    let baseline = run(1, false);
    assert_eq!(baseline, run(4, false), "worker count changed the digests");
    assert_eq!(baseline, run(1, true), "observability changed a 1-worker run");
    assert_eq!(baseline, run(4, true), "observability changed a 4-worker run");
}

#[test]
fn telemetry_run_actually_observed_the_loads() {
    // Guard against the determinism tests passing vacuously: the
    // enabled run must have recorded every load it retired.
    let (mut fabric, id) =
        FabricBuilder::point_to_point(DatapathParams::prototype(), 2, SECTION).unwrap();
    fabric.set_telemetry(true);
    for _ in 0..8 {
        fabric.issue_read(id).unwrap();
    }
    fabric.drain().unwrap();
    let snap = fabric.telemetry_snapshot();
    assert_eq!(snap.counter("fabric.loads.issued"), Some(8));
    assert_eq!(snap.counter("fabric.loads.retired"), Some(8));
    let rtt = snap.timer("fabric.rtt_ns").expect("rtt timer");
    assert_eq!(rtt.count(), 8);
}
