//! Telemetry must be a pure observer: enabling the registry and the
//! flit tracer may not change a single event the simulator processes.
//! These tests run the same load sequence with telemetry on and off
//! and compare the completion trajectories bit for bit.

use thymesisflow::core::fabric::{Fabric, FabricBuilder, PathId};
use thymesisflow::core::params::DatapathParams;
use thymesisflow::netsim::switch::CircuitSwitch;

const SECTION: u64 = 256 << 20;

/// Everything observable about one run: every completion in retire
/// order as `(tag, path, latency_ps)`, the total events processed and
/// the final simulated instant in picoseconds.
#[derive(Debug, PartialEq, Eq)]
struct Trajectory {
    completions: Vec<(u64, u32, u64)>,
    events: u64,
    now_ps: u64,
}

/// Issue `per_path` reads on every path in bursts of four, stepping the
/// fabric between bursts, then drain. Snapshots are taken mid-run when
/// telemetry is enabled to prove that observing does not perturb.
fn run(mut fabric: Fabric, paths: &[PathId], per_path: usize, telemetry: bool) -> Trajectory {
    fabric.set_telemetry(telemetry);
    let mut completions = Vec::new();
    let mut issued = 0usize;
    while issued < per_path {
        let burst = (per_path - issued).min(4);
        for _ in 0..burst {
            for &p in paths {
                fabric.issue_read(p).expect("issue");
            }
        }
        issued += burst;
        // Interleave a little stepping with issuing so the queues are
        // exercised in a non-trivial order.
        for _ in 0..3 {
            match fabric.step().expect("step") {
                Some(done) => {
                    completions
                        .extend(done.iter().map(|c| (c.tag, c.path.0, c.latency.as_ps())));
                }
                None => break,
            }
        }
        if telemetry {
            // A mid-run snapshot must be side-effect free.
            let snap = fabric.telemetry_snapshot();
            assert!(snap.counter("fabric.loads.issued").unwrap_or(0) >= 1);
        }
    }
    while let Some(done) = fabric.step().expect("step") {
        completions.extend(done.iter().map(|c| (c.tag, c.path.0, c.latency.as_ps())));
    }
    Trajectory {
        completions,
        events: fabric.events_processed(),
        now_ps: fabric.now().as_ps(),
    }
}

#[test]
fn point_to_point_is_bit_identical_with_telemetry() {
    let build = || {
        let (fabric, id) =
            FabricBuilder::point_to_point(DatapathParams::prototype(), 2, SECTION).unwrap();
        (fabric, vec![id])
    };
    let (fabric, paths) = build();
    let off = run(fabric, &paths, 24, false);
    let (fabric, paths) = build();
    let on = run(fabric, &paths, 24, true);
    assert_eq!(off, on, "telemetry perturbed the point-to-point trajectory");
    assert_eq!(off.completions.len(), 24);
}

#[test]
fn circuit_rack_is_bit_identical_with_telemetry() {
    let build = || {
        FabricBuilder::circuit_rack(
            DatapathParams::prototype(),
            3,
            SECTION,
            CircuitSwitch::optical(8),
        )
        .unwrap()
    };
    let (fabric, paths) = build();
    let off = run(fabric, &paths, 12, false);
    let (fabric, paths) = build();
    let on = run(fabric, &paths, 12, true);
    assert_eq!(off, on, "telemetry perturbed the circuit-rack trajectory");
    assert_eq!(off.completions.len(), 12 * 3);
}

#[test]
fn telemetry_run_actually_observed_the_loads() {
    // Guard against the determinism tests passing vacuously: the
    // enabled run must have recorded every load it retired.
    let (mut fabric, id) =
        FabricBuilder::point_to_point(DatapathParams::prototype(), 2, SECTION).unwrap();
    fabric.set_telemetry(true);
    for _ in 0..8 {
        fabric.issue_read(id).unwrap();
    }
    fabric.drain().unwrap();
    let snap = fabric.telemetry_snapshot();
    assert_eq!(snap.counter("fabric.loads.issued"), Some(8));
    assert_eq!(snap.counter("fabric.loads.retired"), Some(8));
    let rtt = snap.timer("fabric.rtt_ns").expect("rtt timer");
    assert_eq!(rtt.count(), 8);
}
