//! Workspace-wide static-analysis gate: `cargo test` on the root package
//! fails if any simulator crate's `src/` violates a tflint rule. The
//! per-crate `tflint_gate` tests cover the same ground crate-by-crate;
//! this one catches a violation even when only the root suite runs.

#[test]
fn workspace_passes_tflint() {
    let diags = tflint::check_workspace(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace source readable");
    assert!(diags.is_empty(), "\n{}", tflint::render(&diags));
}
