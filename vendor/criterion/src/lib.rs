//! Offline stand-in for `criterion`.
//!
//! Implements the subset the `bench` crate's targets use: the
//! `Criterion` builder (`sample_size`, `measurement_time`,
//! `warm_up_time`), `bench_function` with a [`Bencher`], `black_box`,
//! and both `criterion_group!`/`criterion_main!` forms. Measurement is
//! a simple timed loop printing mean per-iteration latency — enough to
//! track relative regressions without the statistics engine.

use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target wall time spent measuring one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Wall time spent warming up before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: also calibrates how many iterations fill a sample.
        let warm_start = Instant::now();
        let mut iters_per_sample: u64 = 1;
        while warm_start.elapsed() < self.warm_up_time {
            b.iters = iters_per_sample;
            f(&mut b);
            if b.elapsed < Duration::from_millis(1) {
                iters_per_sample = iters_per_sample.saturating_mul(2);
            }
        }

        let mut total = Duration::ZERO;
        let mut total_iters: u64 = 0;
        let per_sample = (self.measurement_time / self.sample_size.max(1) as u32).max(Duration::from_micros(10));
        for _ in 0..self.sample_size {
            let sample_start = Instant::now();
            while sample_start.elapsed() < per_sample {
                b.iters = iters_per_sample;
                f(&mut b);
                total += b.elapsed;
                total_iters += iters_per_sample;
            }
        }

        if total_iters > 0 {
            let mean_ns = total.as_nanos() as f64 / total_iters as f64;
            println!("{name}: {mean_ns:.1} ns/iter ({total_iters} iters)");
        }
        self
    }

    /// Final-report hook; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// Times closures for one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group, in either the long (`name/config/targets`)
/// or short form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
