//! Offline stand-in for `proptest`.
//!
//! Keeps the macro surface and strategy combinators this workspace's
//! property tests use — `proptest!`, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `Just`, `any`, ranges, tuples, `prop_map`,
//! `collection::{vec, hash_set}` — but samples cases from a
//! deterministic generator seeded by the test's module path instead of
//! running proptest's full shrinking machinery. Failures report the
//! case number; reproduce by rerunning the named test (same seed every
//! run, which also keeps the suite deterministic per tflint TF001/002).

pub mod test_runner {
    use std::fmt;

    /// How many cases a `proptest!` block runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of sampled cases per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed `prop_assert!` within one sampled case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test RNG (SplitMix64 over an FNV-1a seed of the
    /// test's path). No entropy source: every run samples the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG seeded from the test's fully qualified name.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            let zone = u64::MAX - (u64::MAX - n + 1) % n;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % n;
                }
            }
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A recipe for sampling values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps sampled values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe sampling, so strategies of one value type can mix.
    trait DynStrategy<T> {
        fn dyn_sample(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.dyn_sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between several strategies of one value type.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; sampling picks one uniformly.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64) - (lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    impl_int_ranges!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuples {
        ($(($($s:ident . $i:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )+};
    }
    impl_tuples!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    );

    /// The strategy behind [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Samples an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`, `hash_set`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// A concrete length distribution, so untyped range literals like
    /// `1..24` infer as `usize` at the `vec()` call site.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi_inclusive - self.lo) as u64 + 1;
            self.lo + rng.below(span) as usize
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    /// Samples a `Vec` whose length is drawn from `size`.
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    /// A `Vec` of `element` samples with length sampled from `size`.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy { element, size: size.into() }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Samples a `HashSet` whose target size is drawn from `size`.
    pub struct HashSetStrategy<E> {
        element: E,
        size: SizeRange,
    }

    /// A `HashSet` of `element` samples. Duplicates are retried with a
    /// bounded budget, so a narrow element domain yields a smaller set
    /// rather than a hang.
    pub fn hash_set<E>(element: E, size: impl Into<SizeRange>) -> HashSetStrategy<E>
    where
        E: Strategy,
        E::Value: Eq + Hash,
    {
        HashSetStrategy { element, size: size.into() }
    }

    impl<E> Strategy for HashSetStrategy<E>
    where
        E: Strategy,
        E::Value: Eq + Hash,
    {
        type Value = HashSet<E::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<E::Value> {
            let target = self.size.sample(rng);
            let mut out = HashSet::with_capacity(target);
            let mut budget = target.saturating_mul(10) + 100;
            while out.len() < target && budget > 0 {
                out.insert(self.element.sample(rng));
                budget -= 1;
            }
            out
        }
    }
}

/// Namespace mirror so tests can write `prop::collection::vec(...)`.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// Re-exports used by macro expansions.
pub use arbitrary::Arbitrary;
pub use strategy::Strategy;
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Declares deterministic property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` expands to a plain test
/// that samples `config.cases` inputs and runs the body; `prop_assert*`
/// failures abort with the case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident ($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __e
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&($left), &($right));
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&($left), &($right));
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l,
                __r,
                ::std::format!($($fmt)+)
            )));
        }
    }};
}

/// `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&($left), &($right));
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l,
                __r
            )));
        }
    }};
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges_respect_bounds");
        for _ in 0..1000 {
            let v = (5u64..10).sample(&mut rng);
            assert!((5..10).contains(&v));
            let w = (1usize..=7).sample(&mut rng);
            assert!((1..=7).contains(&w));
            let x = (0.0f64..0.25).sample(&mut rng);
            assert!((0.0..0.25).contains(&x));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::for_test("vec_strategy_sizes");
        for _ in 0..200 {
            let v = crate::collection::vec(0u64..100, 1usize..9).sample(&mut rng);
            assert!((1..9).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_expansion_samples(
            a in 0u64..50,
            flag in any::<bool>(),
            mut items in prop::collection::vec(1usize..=3, 1..10),
        ) {
            items.push(a as usize % 3 + 1);
            prop_assert!(a < 50);
            prop_assert!(flag || !flag);
            prop_assert_eq!(items.last().copied().unwrap_or(0), a as usize % 3 + 1);
        }

        #[test]
        fn oneof_and_map_compose(
            choice in prop_oneof![
                (0u64..10).prop_map(|v| v * 2),
                Just(99u64),
            ],
        ) {
            prop_assert!(choice == 99 || (choice % 2 == 0 && choice < 20));
        }
    }
}
