//! Offline stand-in for `rand`.
//!
//! Provides a deterministic `StdRng` (xoshiro256++ seeded through
//! SplitMix64) plus the `Rng`/`SeedableRng` trait subset `simkit::rng`
//! consumes. No OS entropy source exists here on purpose: the simulator
//! forbids entropy-seeded RNG (tflint rule TF002), so `thread_rng` and
//! `from_entropy` are deliberately absent.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Distribution of values of type `T` producible from raw bits.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution over a type's full range (uniform for
/// integers, uniform in `[0, 1)` for floats).
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, span)` by rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "empty sample range");
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

impl SampleRange<u64> for std::ops::Range<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + uniform_below(rng, self.end - self.start)
    }
}

impl SampleRange<u64> for std::ops::RangeInclusive<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64();
        }
        lo + uniform_below(rng, hi - lo + 1)
    }
}

impl SampleRange<usize> for std::ops::Range<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + uniform_below(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange<u32> for std::ops::Range<u32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + uniform_below(rng, u64::from(self.end - self.start)) as u32
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit: f64 = Standard.sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every core RNG.
pub trait Rng: RngCore {
    /// Samples from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = Standard.sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for rand's
    /// `StdRng`. Statistical quality is good enough for the simulator's
    /// moment-matching tests; cryptographic strength is not a goal.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range_and_average_half() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.gen_range(0usize..7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
