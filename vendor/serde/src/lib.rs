//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace vendors
//! a minimal serialization framework under the same crate name. It keeps
//! the subset of the API this repository uses — `Serialize`,
//! `Deserialize`, `#[derive(Serialize, Deserialize)]` (via the `derive`
//! feature and the sibling `serde_derive` stub) and the `#[serde(tag,
//! rename_all)]` attributes on the control-plane enums — but routes
//! everything through an owned [`Value`] tree instead of serde's
//! visitor machinery. `serde_json` (also vendored) prints and parses
//! that tree.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree — the interchange format between
/// [`Serialize`], [`Deserialize`] and the vendored `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed (negative) integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn deserialize(v: &Value) -> Result<Self, DeError>;

    /// Called for struct fields absent from the input map. `Option`
    /// overrides this to yield `None`; everything else errors.
    fn deserialize_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError::new(format!("missing field `{field}`")))
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new("integer out of range")),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new("integer out of range")),
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new("integer out of range")),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new("integer out of range")),
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize(&self) -> Value {
        // JSON numbers cap at u64 here; larger totals stringify.
        match u64::try_from(*self) {
            Ok(n) => Value::UInt(n),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}
impl Deserialize for u128 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::UInt(n) => Ok(u128::from(*n)),
            Value::Str(s) => s.parse().map_err(|_| DeError::new("expected u128")),
            _ => Err(DeError::new("expected u128")),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            _ => Err(DeError::new("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for &str {
    fn serialize(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().unwrap_or('\0'))
            }
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
    fn deserialize_missing(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::new("expected sequence"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::deserialize(v).map(VecDeque::from)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for &[T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$i.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError::new("expected tuple"))?;
                Ok(($(
                    $t::deserialize(
                        s.get($i).ok_or_else(|| DeError::new("tuple too short"))?,
                    )?,
                )+))
            }
        }
    )+};
}
impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// Renders a map key: JSON object keys must be strings, so scalar keys
/// stringify and deserialize back through [`key_to_value`].
fn key_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Float(x) => x.to_string(),
        other => format!("{other:?}"),
    }
}

/// Re-interprets a stringified map key as the value it most likely was.
fn key_to_value(k: &str) -> Value {
    if let Ok(n) = k.parse::<u64>() {
        return Value::UInt(n);
    }
    if let Ok(n) = k.parse::<i64>() {
        return Value::Int(n);
    }
    Value::Str(k.to_string())
}

/// Deserializes a map key, trying the numeric re-interpretation first
/// (for newtype keys like `NetworkId(u32)`) and the raw string second.
fn key_from_str<K: Deserialize>(k: &str) -> Result<K, DeError> {
    K::deserialize(&key_to_value(k)).or_else(|_| K::deserialize(&Value::Str(k.to_string())))
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_string(&k.serialize()), v.serialize()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::new("expected map"))?
            .iter()
            .map(|(k, val)| Ok((key_from_str::<K>(k)?, V::deserialize(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_string(&k.serialize()), v.serialize()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::new("expected map"))?
            .iter()
            .map(|(k, val)| Ok((key_from_str::<K>(k)?, V::deserialize(val)?)))
            .collect()
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::new("expected sequence"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        T::deserialize(v).map(Box::new)
    }
}

/// Support routines used by the generated derive code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Extracts a struct field, delegating absence to
    /// [`Deserialize::deserialize_missing`].
    pub fn field<T: Deserialize>(
        entries: &[(String, Value)],
        name: &str,
    ) -> Result<T, DeError> {
        match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::deserialize(v),
            None => T::deserialize_missing(name),
        }
    }

    /// Converts a `CamelCase` identifier to `snake_case` (the
    /// `rename_all = "snake_case"` rule).
    pub fn snake_case(name: &str) -> String {
        let mut out = String::with_capacity(name.len() + 4);
        for (i, ch) in name.chars().enumerate() {
            if ch.is_ascii_uppercase() {
                if i > 0 {
                    out.push('_');
                }
                out.push(ch.to_ascii_lowercase());
            } else {
                out.push(ch);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u64::deserialize(&42u64.serialize()), Ok(42));
        assert_eq!(i32::deserialize(&(-7i32).serialize()), Ok(-7));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()), Ok(v));
        let mut m = HashMap::new();
        m.insert(3u32, "x".to_string());
        assert_eq!(HashMap::<u32, String>::deserialize(&m.serialize()), Ok(m));
    }

    #[test]
    fn option_handles_missing_fields() {
        let entries: Vec<(String, Value)> = vec![];
        let got: Option<u64> = __private::field(&entries, "absent").expect("defaults to None");
        assert_eq!(got, None);
        assert!(__private::field::<u64>(&entries, "absent").is_err());
    }

    #[test]
    fn snake_case_conversion() {
        assert_eq!(__private::snake_case("Attach"), "attach");
        assert_eq!(__private::snake_case("DetachOldest"), "detach_oldest");
    }
}
