//! Offline stand-in for `serde_derive`.
//!
//! The registry is unreachable in this container, so `syn`/`quote` are
//! unavailable. This macro parses the item's token stream directly with
//! `proc_macro::TokenTree`, extracts just what codegen needs (names,
//! field lists, variant shapes, `#[serde(tag, rename_all)]`), and emits
//! the impl as a formatted string parsed back into a `TokenStream`. It
//! supports the shapes this workspace uses: named/tuple/unit structs,
//! enums with unit/newtype/tuple/named variants, plain type parameters,
//! and internally-tagged enums with `rename_all = "snake_case"`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated invalid Deserialize impl")
}

struct Item {
    name: String,
    /// Plain type-parameter names (`T` in `Frame<T>`).
    params: Vec<String>,
    /// `#[serde(tag = "...")]` — internally tagged enum.
    tag: Option<String>,
    /// `#[serde(rename_all = "snake_case")]`.
    snake: bool,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut tag = None;
    let mut snake = false;

    // Leading attributes: doc comments and #[serde(...)].
    while i + 1 < toks.len() {
        if is_punct(&toks[i], '#') {
            if let TokenTree::Group(g) = &toks[i + 1] {
                scan_serde_attr(g.stream(), &mut tag, &mut snake);
                i += 2;
                continue;
            }
        }
        break;
    }

    // Visibility.
    if matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let is_enum = match &toks[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" => false,
        TokenTree::Ident(id) if id.to_string() == "enum" => true,
        other => panic!("serde_derive: expected struct or enum, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;

    // Generic parameters.
    let mut params = Vec::new();
    if i < toks.len() && is_punct(&toks[i], '<') {
        let mut depth = 1i32;
        i += 1;
        let mut expect_param = true;
        while i < toks.len() && depth > 0 {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
                TokenTree::Punct(p) if p.as_char() == '\'' => expect_param = false,
                TokenTree::Ident(id) if expect_param && depth == 1 => {
                    let s = id.to_string();
                    if s != "const" {
                        params.push(s);
                        expect_param = false;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    // Body: first brace/paren group, or `;` for a unit struct. A `where`
    // clause (not used in this workspace) is skipped by the scan.
    let kind = loop {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break if is_enum {
                    Kind::Enum(parse_variants(g.stream()))
                } else {
                    Kind::NamedStruct(parse_named_fields(g.stream()))
                };
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
                break Kind::TupleStruct(count_tuple_fields(g.stream()));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' && !is_enum => {
                break Kind::UnitStruct;
            }
            Some(_) => i += 1,
            None => {
                if is_enum {
                    panic!("serde_derive: enum {name} has no body");
                }
                break Kind::UnitStruct;
            }
        }
    };

    Item { name, params, tag, snake, kind }
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Reads `serde(tag = "...", rename_all = "...")` out of one attribute's
/// bracket contents; other attributes (doc, derive helpers) are ignored.
fn scan_serde_attr(stream: TokenStream, tag: &mut Option<String>, snake: &mut bool) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut j = 0;
            while j < inner.len() {
                if let TokenTree::Ident(key) = &inner[j] {
                    let key = key.to_string();
                    if j + 2 < inner.len() && is_punct(&inner[j + 1], '=') {
                        let val = inner[j + 2].to_string();
                        let val = val.trim_matches('"').to_string();
                        match key.as_str() {
                            "tag" => *tag = Some(val),
                            "rename_all" => {
                                if val == "snake_case" {
                                    *snake = true;
                                } else {
                                    panic!("serde_derive: unsupported rename_all = \"{val}\"");
                                }
                            }
                            other => panic!("serde_derive: unsupported serde attribute `{other}`"),
                        }
                        j += 3;
                        continue;
                    }
                }
                j += 1;
            }
        }
        _ => {}
    }
}

/// Field names from `{ ... }`; types are skipped (codegen is type-blind).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while i + 1 < toks.len() && is_punct(&toks[i], '#') {
            i += 2;
        }
        if i < toks.len() && matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        match toks.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            Some(other) => panic!("serde_derive: expected field name, found {other}"),
            None => break,
        }
        i += 1;
        // Skip `: Type` until a comma outside angle brackets. `<`/`>`
        // appear as plain puncts inside types like `Vec<Frame<T>>`.
        let mut angle = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of fields in a tuple body `( ... )`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma does not add a field.
    if matches!(toks.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while i + 1 < toks.len() && is_punct(&toks[i], '#') {
            i += 2;
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive: expected variant name, found {other}"),
            None => break,
        };
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------- codegen

/// `rename_all = "snake_case"` applied at expansion time.
fn snake_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn wire_name(item: &Item, variant: &str) -> String {
    if item.snake {
        snake_case(variant)
    } else {
        variant.to_string()
    }
}

/// `impl<T: ::serde::Serialize> ::serde::Serialize for Frame<T>`.
fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.params.is_empty() {
        format!("impl ::serde::{trait_name} for {}", item.name)
    } else {
        let bounded: Vec<String> = item
            .params
            .iter()
            .map(|p| format!("{p}: ::serde::{trait_name}"))
            .collect();
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{}>",
            bounded.join(", "),
            item.name,
            item.params.join(", ")
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let header = impl_header(item, "Serialize");
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => gen_serialize_enum(item, variants),
    };
    format!(
        "{header} {{ fn serialize(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_serialize_enum(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    let mut arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        let wire = wire_name(item, vname);
        let arm = match (&item.tag, &v.shape) {
            (None, Shape::Unit) => format!(
                "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{wire}\"))"
            ),
            (None, Shape::Tuple(1)) => format!(
                "{name}::{vname}(__f0) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{wire}\"), ::serde::Serialize::serialize(__f0))])"
            ),
            (None, Shape::Tuple(n)) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::serialize({b})"))
                    .collect();
                format!(
                    "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{wire}\"), ::serde::Value::Seq(::std::vec![{}]))])",
                    binds.join(", "),
                    items.join(", ")
                )
            }
            (None, Shape::Named(fields)) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize({f}))"
                        )
                    })
                    .collect();
                format!(
                    "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{wire}\"), ::serde::Value::Map(::std::vec![{}]))])",
                    fields.join(", "),
                    entries.join(", ")
                )
            }
            (Some(tag), Shape::Unit) => format!(
                "{name}::{vname} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{tag}\"), ::serde::Value::Str(::std::string::String::from(\"{wire}\")))])"
            ),
            (Some(tag), Shape::Named(fields)) => {
                let mut entries = vec![format!(
                    "(::std::string::String::from(\"{tag}\"), ::serde::Value::Str(::std::string::String::from(\"{wire}\")))"
                )];
                entries.extend(fields.iter().map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize({f}))"
                    )
                }));
                format!(
                    "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![{}])",
                    fields.join(", "),
                    entries.join(", ")
                )
            }
            (Some(_), Shape::Tuple(_)) => panic!(
                "serde_derive: internally tagged enums support unit and struct variants only ({name}::{vname})"
            ),
        };
        arms.push(arm);
    }
    format!("match self {{ {} }}", arms.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let header = impl_header(item, "Deserialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(__entries, \"{f}\")?"))
                .collect();
            format!(
                "let __entries = __v.as_map().ok_or_else(|| ::serde::DeError::new(\"expected map for struct {name}\"))?; \
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))"
        ),
        Kind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::deserialize(__seq.get({i}).ok_or_else(|| ::serde::DeError::new(\"tuple struct {name} too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "let __seq = __v.as_seq().ok_or_else(|| ::serde::DeError::new(\"expected sequence for struct {name}\"))?; \
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Kind::UnitStruct => {
            format!("let _ = __v; ::std::result::Result::Ok({name})")
        }
        Kind::Enum(variants) => gen_deserialize_enum(item, variants),
    };
    format!(
        "{header} {{ fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
    )
}

fn gen_deserialize_enum(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    if let Some(tag) = &item.tag {
        let mut arms = Vec::new();
        for v in variants {
            let vname = &v.name;
            let wire = wire_name(item, vname);
            let arm = match &v.shape {
                Shape::Unit => {
                    format!("\"{wire}\" => ::std::result::Result::Ok({name}::{vname})")
                }
                Shape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::__private::field(__entries, \"{f}\")?"))
                        .collect();
                    format!(
                        "\"{wire}\" => ::std::result::Result::Ok({name}::{vname} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Shape::Tuple(_) => panic!(
                    "serde_derive: internally tagged enums support unit and struct variants only ({name}::{vname})"
                ),
            };
            arms.push(arm);
        }
        return format!(
            "let __entries = __v.as_map().ok_or_else(|| ::serde::DeError::new(\"expected map for enum {name}\"))?; \
             let __tag = __v.get(\"{tag}\").and_then(|t| t.as_str()).ok_or_else(|| ::serde::DeError::new(\"missing tag `{tag}` for enum {name}\"))?; \
             match __tag {{ {}, __other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"unknown {name} variant `{{__other}}`\"))) }}",
            arms.join(", ")
        );
    }

    // Externally tagged: unit variants arrive as strings, data variants
    // as single-entry maps keyed by the variant name.
    let mut unit_arms = Vec::new();
    let mut data_arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        let wire = wire_name(item, vname);
        match &v.shape {
            Shape::Unit => unit_arms.push(format!(
                "\"{wire}\" => ::std::result::Result::Ok({name}::{vname})"
            )),
            Shape::Tuple(1) => data_arms.push(format!(
                "\"{wire}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::deserialize(__inner)?))"
            )),
            Shape::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::deserialize(__seq.get({i}).ok_or_else(|| ::serde::DeError::new(\"variant {name}::{vname} too short\"))?)?"
                        )
                    })
                    .collect();
                data_arms.push(format!(
                    "\"{wire}\" => {{ let __seq = __inner.as_seq().ok_or_else(|| ::serde::DeError::new(\"expected sequence for {name}::{vname}\"))?; ::std::result::Result::Ok({name}::{vname}({})) }}",
                    inits.join(", ")
                ));
            }
            Shape::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::__private::field(__entries, \"{f}\")?"))
                    .collect();
                data_arms.push(format!(
                    "\"{wire}\" => {{ let __entries = __inner.as_map().ok_or_else(|| ::serde::DeError::new(\"expected map for {name}::{vname}\"))?; ::std::result::Result::Ok({name}::{vname} {{ {} }}) }}",
                    inits.join(", ")
                ));
            }
        }
    }
    unit_arms.push(format!(
        "__other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"unknown {name} variant `{{__other}}`\")))"
    ));
    data_arms.push(format!(
        "__other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"unknown {name} variant `{{__other}}`\")))"
    ));
    format!(
        "match __v {{ \
           ::serde::Value::Str(__s) => match __s.as_str() {{ {} }}, \
           ::serde::Value::Map(__m) if __m.len() == 1 => {{ \
             let (__k, __inner) = &__m[0]; \
             match __k.as_str() {{ {} }} \
           }}, \
           _ => ::std::result::Result::Err(::serde::DeError::new(\"expected enum {name}\")) \
        }}",
        unit_arms.join(", "),
        data_arms.join(", ")
    )
}
