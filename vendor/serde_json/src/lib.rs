//! Offline stand-in for `serde_json`.
//!
//! Prints and parses the vendored `serde::Value` tree as compact JSON.
//! Supports exactly what the workspace round-trips: objects, arrays,
//! strings (with escape sequences), integers, floats, booleans, null.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    T::deserialize(&value).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------- printing

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Integral floats keep a ".0" so they parse back as floats.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode from the byte position to keep UTF-8 intact.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().ok_or_else(|| Error::new("empty string slice"))?;
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|n| Value::Int(-n))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);

        let s = "line\n\"quote\"".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn parses_nested_objects() {
        let v: Value = {
            let mut p = Parser {
                bytes: br#"{"a": [1, 2.5, true], "b": {"c": null}}"#,
                pos: 0,
            };
            p.parse_value().unwrap()
        };
        assert_eq!(v.get("a").and_then(|a| a.as_seq()).map(<[Value]>::len), Some(3));
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Value::Null));
    }

    #[test]
    fn negative_numbers_parse() {
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert!((from_str::<f64>("-2.5e3").unwrap() + 2500.0).abs() < 1e-9);
    }
}
